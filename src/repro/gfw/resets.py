"""Forged reset injection with the two observed signatures (§2.1).

Measured characteristics encoded here:

- **type-1** devices inject a single RST toward each endpoint, with a
  *random* TTL and window size;
- **type-2** devices inject three RST/ACKs toward each endpoint with
  sequence numbers X, X+1460, and X+4380 (X being the current sequence
  point of the opposite side — future offsets so the forgeries stay ahead
  of genuine traffic), with *cyclically increasing* TTL and window, and
  additionally enforce the 90-second blacklist (forged SYN/ACKs for SYNs,
  reset pairs for anything else).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.netstack.packet import ACK, IPPacket, RST, SYN, TCPSegment, seq_add


class ResetInjector:
    """Builds forged reset/SYN-ACK packets with per-type signatures."""

    def __init__(self, reset_type: int, rng: random.Random, device_name: str) -> None:
        if reset_type not in (1, 2):
            raise ValueError("GFW reset type must be 1 or 2")
        self.reset_type = reset_type
        self.rng = rng
        self.device_name = device_name
        # Cyclic counters for the type-2 signature.
        self._cyclic_ttl = 64
        self._cyclic_window = 512

    # -- signature helpers -------------------------------------------------
    def _next_ttl(self) -> int:
        if self.reset_type == 1:
            return self.rng.randint(33, 225)
        self._cyclic_ttl += 1
        if self._cyclic_ttl > 128:
            self._cyclic_ttl = 64
        return self._cyclic_ttl

    def _next_window(self) -> int:
        if self.reset_type == 1:
            return self.rng.randint(1, 65535)
        self._cyclic_window += 79
        if self._cyclic_window > 65000:
            self._cyclic_window = 512
        return self._cyclic_window

    # -- packet builders -----------------------------------------------------
    def forged_resets(
        self,
        spoof_src: Tuple[str, int],
        toward: Tuple[str, int],
        seq_base: int,
        ack_hint: int = 0,
    ) -> List[IPPacket]:
        """Resets spoofed as ``spoof_src``, aimed at ``toward``.

        Type-1 emits one plain RST at ``seq_base``; type-2 emits three
        RST/ACKs at ``seq_base`` + {0, 1460, 4380} (§2.1 footnote: future
        sequence numbers offset the risk of falling behind real traffic).
        """
        packets: List[IPPacket] = []
        if self.reset_type == 1:
            offsets = (0,)
            flags = RST
        else:
            offsets = (0, 1460, 4380)
            flags = RST | ACK
        for offset in offsets:
            segment = TCPSegment(
                src_port=spoof_src[1],
                dst_port=toward[1],
                seq=seq_add(seq_base, offset),
                ack=ack_hint if flags & ACK else 0,
                flags=flags,
                window=self._next_window(),
            )
            packet = IPPacket(
                src=spoof_src[0],
                dst=toward[0],
                payload=segment,
                ttl=self._next_ttl(),
            )
            packet.meta["origin"] = f"gfw-type{self.reset_type}"
            packet.meta["forged"] = "reset"
            packets.append(packet)
        return packets

    def forged_synack(
        self,
        spoof_src: Tuple[str, int],
        toward: Tuple[str, int],
        acked_seq: int,
    ) -> IPPacket:
        """The wrong-sequence SYN/ACK sent for SYNs during a blacklist.

        Only type-2 devices do this (§2.1).  The sequence number is drawn
        at random so the client's handshake cannot complete correctly.
        """
        segment = TCPSegment(
            src_port=spoof_src[1],
            dst_port=toward[1],
            seq=self.rng.randrange(0, 2**32),
            ack=seq_add(acked_seq, 1),
            flags=SYN | ACK,
            window=self._next_window(),
        )
        packet = IPPacket(
            src=spoof_src[0], dst=toward[0], payload=segment, ttl=self._next_ttl()
        )
        packet.meta["origin"] = f"gfw-type{self.reset_type}"
        packet.meta["forged"] = "synack"
        return packet
