"""Forged reset injection with the two observed signatures (§2.1).

Measured characteristics encoded here:

- **type-1** devices inject a single RST toward each endpoint, with a
  *random* TTL and window size;
- **type-2** devices inject three RST/ACKs toward each endpoint with
  sequence numbers X, X+1460, and X+4380 (X being the current sequence
  point of the opposite side — future offsets so the forgeries stay ahead
  of genuine traffic), with *cyclically increasing* TTL and window, and
  additionally enforce the 90-second blacklist (forged SYN/ACKs for SYNs,
  reset pairs for anything else).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.netstack.packet import (
    ACK,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    packet_shell,
    segment_shell,
    seq_add,
)


class ResetInjector:
    """Builds forged reset/SYN-ACK packets with per-type signatures."""

    def __init__(self, reset_type: int, rng: random.Random, device_name: str) -> None:
        if reset_type not in (1, 2):
            raise ValueError("GFW reset type must be 1 or 2")
        self.reset_type = reset_type
        self.rng = rng
        self.device_name = device_name
        # Cyclic counters for the type-2 signature.
        self._cyclic_ttl = 64
        self._cyclic_window = 512
        self._origin = f"gfw-type{reset_type}"

    def _forged_packet(
        self, src: str, dst: str, segment: TCPSegment, ttl: int, kind: str
    ) -> IPPacket:
        """Wrap a forged segment; built by direct slot assignment (pooled
        shell) because volleys are the dominant packet source in censored
        trials."""
        packet = packet_shell()
        packet.src = src
        packet.dst = dst
        packet.payload = segment
        packet.ttl = ttl
        packet.identification = 0
        packet.dont_fragment = True
        packet.more_fragments = False
        packet.frag_offset = 0
        packet.total_length_override = None
        packet.meta = {"origin": self._origin, "forged": kind}
        return packet

    @staticmethod
    def _forged_segment(
        src_port: int, dst_port: int, seq: int, ack: int, flags: int, window: int
    ) -> TCPSegment:
        segment = segment_shell()
        segment.src_port = src_port
        segment.dst_port = dst_port
        segment.seq = seq
        segment.ack = ack
        segment.flags = flags
        segment.window = window
        segment.payload = b""
        segment.options = []
        segment.urgent = 0
        segment.checksum_override = None
        segment.data_offset_override = None
        return segment

    # -- signature helpers -------------------------------------------------
    def _next_ttl(self) -> int:
        if self.reset_type == 1:
            return self.rng.randint(33, 225)
        self._cyclic_ttl += 1
        if self._cyclic_ttl > 128:
            self._cyclic_ttl = 64
        return self._cyclic_ttl

    def _next_window(self) -> int:
        if self.reset_type == 1:
            return self.rng.randint(1, 65535)
        self._cyclic_window += 79
        if self._cyclic_window > 65000:
            self._cyclic_window = 512
        return self._cyclic_window

    # -- packet builders -----------------------------------------------------
    def forged_resets(
        self,
        spoof_src: Tuple[str, int],
        toward: Tuple[str, int],
        seq_base: int,
        ack_hint: int = 0,
    ) -> List[IPPacket]:
        """Resets spoofed as ``spoof_src``, aimed at ``toward``.

        Type-1 emits one plain RST at ``seq_base``; type-2 emits three
        RST/ACKs at ``seq_base`` + {0, 1460, 4380} (§2.1 footnote: future
        sequence numbers offset the risk of falling behind real traffic).
        """
        packets: List[IPPacket] = []
        if self.reset_type == 1:
            offsets = (0,)
            flags = RST
            ack = 0
        else:
            offsets = (0, 1460, 4380)
            flags = RST | ACK
            ack = ack_hint
        for offset in offsets:
            segment = self._forged_segment(
                spoof_src[1],
                toward[1],
                seq_add(seq_base, offset),
                ack,
                flags,
                self._next_window(),
            )
            packets.append(
                self._forged_packet(
                    spoof_src[0], toward[0], segment, self._next_ttl(), "reset"
                )
            )
        return packets

    def forged_synack(
        self,
        spoof_src: Tuple[str, int],
        toward: Tuple[str, int],
        acked_seq: int,
    ) -> IPPacket:
        """The wrong-sequence SYN/ACK sent for SYNs during a blacklist.

        Only type-2 devices do this (§2.1).  The sequence number is drawn
        at random so the client's handshake cannot complete correctly.
        """
        segment = self._forged_segment(
            spoof_src[1],
            toward[1],
            self.rng.randrange(0, 2**32),
            seq_add(acked_seq, 1),
            SYN | ACK,
            self._next_window(),
        )
        return self._forged_packet(
            spoof_src[0], toward[0], segment, self._next_ttl(), "synack"
        )
