"""Per-flow shadow state kept by a GFW device.

A :class:`GFWFlow` is the censor's counterpart of a TCB.  The critical
design point — and the entire attack surface the paper maps — is that
this structure is maintained from *passively observed* packets with no
knowledge of what the endpoints actually accepted.  The evolved model's
"re-synchronization state" (§4) is the ``RESYNC`` member here.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, ValuesView

from repro.netstack.fragment import OverlapPolicy
from repro.netstack.packet import seq_add
from repro.gfw.dpi import StreamInspector
from repro.gfw.rules import RuleSet
from repro.tcp.reassembly import ReceiveBuffer
from repro.telemetry.metrics import get_registry

ConnKey = Tuple[Tuple[str, int], Tuple[str, int]]


class GFWFlowState(enum.Enum):
    """The GFW's per-flow tracking states as inferred by the paper."""

    #: TCB exists; data from the believed client is reassembled and
    #: inspected against the expected sequence number.
    ESTABLISHED = "ESTABLISHED"
    #: NB2: the device saw an ambiguous handshake (multiple SYNs, multiple
    #: SYN/ACKs, or a SYN/ACK acking an unexpected number) and will adopt
    #: the sequence number of the *next* client data packet or server
    #: SYN/ACK it sees.
    RESYNC = "RESYNC"


@dataclass
class GFWFlow:
    """The censor's view of one TCP connection."""

    #: Who the device believes initiated the connection.  TCB Reversal
    #: (§5.2) works precisely because a SYN/ACK-created TCB gets this
    #: backwards.
    believed_client: Tuple[str, int]
    believed_server: Tuple[str, int]
    state: GFWFlowState
    #: Next sequence number expected from the believed client.
    client_next_seq: int = 0
    #: Latest observed sequence point on the believed server side (the
    #: "X" used for forged reset sequence numbers, §2.1 footnote 1).
    server_next_seq: int = 0
    server_seq_valid: bool = False
    syn_count: int = 0
    synack_count: int = 0
    #: Set when the cluster-level overload draw said this flow escapes
    #: tracking (the paper's persistent 2.8 % no-strategy success rate).
    missed: bool = False
    #: Monitored-direction reassembly and inspection.
    buffer: Optional[ReceiveBuffer] = None
    inspector: Optional[StreamInspector] = None
    created_at: float = 0.0
    #: Window the device tolerates around ``client_next_seq``.
    seq_window: int = 65535
    #: Set once the device has seen evidence the 3-way handshake finished
    #: (a client pure-ACK after the SYN/ACK, or client data); NB3's
    #: resync-on-RST probability differs across this boundary (§4).
    handshake_complete: bool = False
    #: Latched once this flow has triggered enforcement.
    punished: bool = False
    #: Set when the device has observed a FIN on this connection.  Under
    #: ``fin_tears_down=False`` (the evolved default) the TCB survives the
    #: FIN, so the table distinguishes evicting a *finished* flow (cheap,
    #: no censorship consequence) from evicting one still mid-stream.
    fin_seen: bool = False

    def init_monitoring(
        self,
        client_next_seq: int,
        rules: RuleSet,
        ooo_policy: OverlapPolicy,
    ) -> None:
        """(Re)anchor the monitored stream at ``client_next_seq``."""
        self.client_next_seq = client_next_seq & 0xFFFFFFFF
        self.buffer = ReceiveBuffer(self.client_next_seq, policy=ooo_policy)
        if self.inspector is None:
            self.inspector = StreamInspector(rules)

    def resynchronize_to(
        self, seq: int, rules: RuleSet, ooo_policy: OverlapPolicy
    ) -> None:
        """Adopt a new expected client sequence number (leaving RESYNC).

        The previously reassembled bytes stay with the inspector (the GFW
        latches detections), but the reassembly anchor moves — packets at
        the *old* sequence numbers are out-of-window from now on, which is
        exactly what the desynchronization building block (§5.1) exploits.
        """
        self.client_next_seq = seq & 0xFFFFFFFF
        self.buffer = ReceiveBuffer(self.client_next_seq, policy=ooo_policy)
        self.state = GFWFlowState.ESTABLISHED

    def note_server_activity(self, seq_end: int) -> None:
        self.server_next_seq = seq_end & 0xFFFFFFFF
        self.server_seq_valid = True

    def from_believed_client(self, src: Tuple[str, int]) -> bool:
        return src == self.believed_client

    def endpoints_key(self) -> ConnKey:
        ends = sorted([self.believed_client, self.believed_server])
        return (ends[0], ends[1])


def connection_key(src: Tuple[str, int], dst: Tuple[str, int]) -> ConnKey:
    """Direction-agnostic key used for the device's flow table."""
    ends = sorted([src, dst])
    return (ends[0], ends[1])


class FlowTable:
    """The device's bounded TCB store with least-recently-used eviction.

    §2.1 notes that stateful tracking is "costly" for the GFW — a real
    middlebox cannot keep every flow it has ever seen.  This table
    bounds the device to ``capacity`` concurrent TCBs and silently
    evicts the least-recently-*touched* flow to admit a new one, which
    has an observable censorship consequence: an evicted flow becomes
    invisible until a new TCB-creating packet (SYN, or SYN/ACK under
    NB1) appears, exactly as if the connection had never existed.

    A "touch" is any lookup or (re)insertion by the device's packet
    handler, so recency tracks packet activity, not creation order.
    The table keeps per-table resource-accounting counters surfaced
    through :meth:`GFWDevice.stats` (zeroed between trials) and mirrors
    every create/evict into the process metrics registry
    (``gfw.flows_created`` / ``gfw.flows_evicted``, process-lifetime,
    merged across the worker pool).

    Evictions are split by what was lost: ``flows_evicted_active`` counts
    flows dropped mid-stream (the censor loses inspection state it still
    needed — an evicted sensitive flow becomes a false negative), while
    ``flows_evicted_after_fin`` counts flows whose FIN the device had
    already seen (bookkeeping churn only).  The registry mirrors the
    split as ``gfw.flows_evicted_active`` / ``gfw.flows_evicted_after_fin``.

    ``on_evict`` (when set) is called as ``on_evict(key, flow)`` for
    every capacity eviction — the fleet engine uses it to attribute
    eviction-induced misclassifications to specific client flows.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("flow table capacity must be >= 1")
        self.capacity = capacity
        self._flows: "OrderedDict[object, GFWFlow]" = OrderedDict()
        self.flows_created = 0
        self.flows_evicted = 0
        self.flows_evicted_active = 0
        self.flows_evicted_after_fin = 0
        self.peak_tracked = 0
        self.on_evict: Optional[Callable[[object, GFWFlow], None]] = None
        registry = get_registry()
        self._metric_created = registry.counter("gfw.flows_created")
        self._metric_evicted = registry.counter("gfw.flows_evicted")
        self._metric_evicted_active = registry.counter("gfw.flows_evicted_active")
        self._metric_evicted_after_fin = registry.counter(
            "gfw.flows_evicted_after_fin"
        )

    # -- the dict-shaped API the device and benches use ------------------
    def get(self, key: object) -> Optional[GFWFlow]:
        flow = self._flows.get(key)
        if flow is not None:
            self._flows.move_to_end(key)
        return flow

    def __getitem__(self, key: object) -> GFWFlow:
        flow = self.get(key)
        if flow is None:
            raise KeyError(key)
        return flow

    def __setitem__(self, key: object, flow: GFWFlow) -> None:
        if key in self._flows:
            self._flows[key] = flow
            self._flows.move_to_end(key)
            return
        if len(self._flows) >= self.capacity:
            evicted_key, evicted = self._flows.popitem(last=False)
            self.flows_evicted += 1
            self._metric_evicted.inc()
            if evicted.fin_seen:
                self.flows_evicted_after_fin += 1
                self._metric_evicted_after_fin.inc()
            else:
                self.flows_evicted_active += 1
                self._metric_evicted_active.inc()
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted)
        self._flows[key] = flow
        self.flows_created += 1
        self._metric_created.inc()
        if len(self._flows) > self.peak_tracked:
            self.peak_tracked = len(self._flows)

    def __delitem__(self, key: object) -> None:
        del self._flows[key]

    def __contains__(self, key: object) -> bool:
        return key in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[object]:
        return iter(self._flows)

    def keys(self):
        return self._flows.keys()

    def values(self) -> "ValuesView[GFWFlow]":
        return self._flows.values()

    def items(self):
        return self._flows.items()

    def clear(self) -> None:
        """Drop every tracked flow (counters keep accumulating)."""
        self._flows.clear()

    def reset(self) -> None:
        """Drop all flows *and* zero the counters (between trials)."""
        self._flows.clear()
        self.flows_created = 0
        self.flows_evicted = 0
        self.flows_evicted_active = 0
        self.flows_evicted_after_fin = 0
        self.peak_tracked = 0


def expected_reset_seqs(flow: GFWFlow) -> Tuple[int, int, int]:
    """The three type-2 forged-reset sequence numbers (X, X+1460, X+4380)."""
    x = flow.server_next_seq
    return (x, seq_add(x, 1460), seq_add(x, 4380))
