"""Detection rules: sensitive keywords, poisoned domains, fingerprints.

The paper's measurement uses the keyword ``ultrasurf`` in an HTTP request
(§3.3) and ``www.dropbox.com`` as a censored domain for DNS tests (§7.2);
both are the defaults here.  Tor and OpenVPN are identified by traffic
fingerprints (§7.3), which in the simulator are the protocol preambles
defined in :mod:`repro.apps.tor` and :mod:`repro.apps.vpn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: The probe keyword the paper uses throughout its HTTP measurements.
DEFAULT_KEYWORDS: Tuple[bytes, ...] = (b"ultrasurf", b"falun", b"freedom_tunnel")

#: Domains the GFW's DNS censorship targets (a tiny stand-in for the
#: Alexa-1M-derived list §6 mentions).
DEFAULT_POISONED_DOMAINS: Tuple[str, ...] = (
    "www.dropbox.com",
    "www.facebook.com",
    "twitter.com",
    "www.youtube.com",
)


@dataclass(frozen=True)
class Detection:
    """A DPI hit: what was found and why it is censorable."""

    kind: str  # "http-keyword" | "dns-domain" | "tor" | "vpn"
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.detail}"


@dataclass
class RuleSet:
    """The rule base a GFW device applies to reassembled streams."""

    keywords: List[bytes] = field(default_factory=lambda: list(DEFAULT_KEYWORDS))
    poisoned_domains: List[str] = field(
        default_factory=lambda: list(DEFAULT_POISONED_DOMAINS)
    )
    #: Whether HTTP *responses* are inspected.  Park et al. found response
    #: filtering discontinued (§2.1 / §5.2); default False.
    censor_http_responses: bool = False
    #: Tor fingerprinting enabled on this device (§7.3: not all paths
    #: traverse Tor-filtering devices).
    detect_tor: bool = True
    #: OpenVPN-over-TCP fingerprinting (§7.3 VPN experiment).
    detect_vpn: bool = True

    def match_keyword(self, payload: bytes) -> Optional[bytes]:
        """Return the first sensitive keyword found in ``payload``."""
        lowered = payload.lower()
        for keyword in self.keywords:
            if keyword in lowered:
                return keyword
        return None

    def domain_is_poisoned(self, domain: str) -> bool:
        domain = domain.lower().rstrip(".")
        for poisoned in self.poisoned_domains:
            if domain == poisoned or domain.endswith("." + poisoned):
                return True
        return False
