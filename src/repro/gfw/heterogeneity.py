"""Spatiotemporal GFW heterogeneity: per-route variants and diurnal load.

**Extension, not paper.**  The source paper models one GFW installation
per path; Ensafi et al. ("Large-scale Spatiotemporal Characterization of
Inconsistencies in the World's Largest Firewall", PAPERS.md) measured the
real system as a *heterogeneous fleet*: different routes see devices with
different rule generations, RST injection fails more often at peak load
hours, and the blacklist window drifts instead of holding a fixed 90 s.

This module supplies the deterministic fabric for that model:

- :class:`RouteEnsemble` — assigns every ``(vantage, target)`` route one
  registered model variant plus a per-route :class:`TemporalProfile`.
  Assignment is a **pure function** of ``(ensemble seed, vantage name,
  target name)`` via crc32 (never ``hash()``): permutation-stable,
  interpreter-stable, and — critically — free of recorded RNG draws, so
  scenario builds keep their exact historical draw order and the pooled
  scenario-reuse path stays byte-identical.
- :class:`TemporalProfile` — a sinusoidal diurnal load curve mapped to a
  reset-*suppression* probability plus a blacklist-TTL drift factor.
  The suppression coin itself is drawn **at detection time on the
  device's ledger-recorded stream** (one ``rng.coin`` per detected
  flow), so PR 9's replay tier forks on it instead of silently
  diverging.

The ``heterogeneous`` pseudo-variant rides the existing ``gfw_variant``
axis everywhere (scenario builds, the fleet's shared state, the
conformance matrix); :func:`resolve_route` is the single choke point
that maps it to a concrete member variant per route.
"""

from __future__ import annotations

import contextlib
import math
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.gfw.models import MODEL_VARIANT_FACTORIES, model_variant_configs
from repro.telemetry.metrics import get_registry

__all__ = [
    "HETEROGENEOUS_VARIANT",
    "RouteEnsemble",
    "TemporalProfile",
    "active_ensemble",
    "is_heterogeneous",
    "resolve_route",
    "set_active_ensemble",
    "use_ensemble",
    "validate_variant",
]

#: The pseudo-variant name accepted wherever a model variant is: it is
#: not itself a member of ``MODEL_VARIANT_FACTORIES`` — it *selects* a
#: member per route through the active :class:`RouteEnsemble`.
HETEROGENEOUS_VARIANT = "heterogeneous"

_REGISTRY = get_registry()
#: Routes resolved through the heterogeneous axis (identity resolutions
#: of concrete variants do not count — existing telemetry-parity pins
#: for homogeneous runs must not see a new counter).
_METRIC_ROUTES_ASSIGNED = _REGISTRY.counter("hetero.routes_assigned")

#: Ceiling on generated suppression levels.  Ensafi-style failure to
#: inject is a *load* effect, never a full outage: even at peak hours
#: the majority of detections on a loaded route still draw resets.
_MAX_GENERATED_SUPPRESSION = 0.45


def _unit(seed: int, *parts: str) -> float:
    """Uniform in [0, 1) from crc32 — the repo's hash-free seeding idiom
    (same shape as the fleet's ``_unit``; ``hash()`` is banned because
    PYTHONHASHSEED would leak into verdicts)."""
    token = f"{seed}|" + "|".join(parts)
    return (zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF) / 2**32


@dataclass(frozen=True)
class TemporalProfile:
    """One route's diurnal censor-load curve and blacklist drift.

    ``reset_suppression(hour)`` is the probability that a *detected*
    flow draws no enforcement (no reset volley, no blacklist entry)
    because the injecting device is overloaded — Ensafi et al.'s
    "failure to inject" observation, strongest at the route's peak
    hour.  The curve is a raised cosine: maximum at ``peak_hour``,
    minimum 12 simulated hours away.

    ``ttl_factor`` scales the 90 s blacklist window (drifting TTLs);
    re-add on re-match is emergent — an expired pair that triggers the
    DPI again is simply blacklisted again by the device.
    """

    #: Hour-of-day (0–24) of maximum load / maximum suppression.
    peak_hour: float = 12.0
    #: Suppression floor at the trough (off-peak residual load).
    base_suppression: float = 0.05
    #: Peak-minus-trough swing of the suppression level.
    amplitude: float = 0.30
    #: Multiplier on the configured blacklist duration (TTL drift).
    ttl_factor: float = 1.0

    def reset_suppression(self, hour: float) -> float:
        """Suppression probability at a simulated hour-of-day."""
        phase = math.cos((hour - self.peak_hour) * math.pi / 12.0)
        level = self.base_suppression + self.amplitude * 0.5 * (1.0 + phase)
        return min(1.0, max(0.0, level))


@dataclass(frozen=True)
class RouteEnsemble:
    """Deterministic (vantage, target) → (member variant, profile) map.

    ``members`` are concrete registered variants (``heterogeneous``
    itself is rejected — no recursion).  ``temporal=False`` disables the
    diurnal layer entirely: a single-member ensemble with temporal off
    reduces byte-for-byte to that member variant, which the conformance
    tier pins.  ``profile`` forces one fixed :class:`TemporalProfile`
    for every route (tests use it to pin suppression deterministically);
    ``None`` generates a per-route profile from the ensemble seed.
    """

    members: Tuple[str, ...] = ("evolved", "mixed", "old")
    seed: int = 2017
    temporal: bool = True
    #: Generated ``ttl_factor`` range: the low end (~1.8 s of a 90 s
    #: window) makes expiry-and-re-add observable inside one 10 s trial.
    ttl_drift: Tuple[float, float] = (0.02, 1.0)
    profile: Optional[TemporalProfile] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("RouteEnsemble needs at least one member")
        for member in self.members:
            if member == HETEROGENEOUS_VARIANT:
                raise ValueError(
                    "heterogeneous cannot be a member of itself"
                )
            if member not in MODEL_VARIANT_FACTORIES:
                raise KeyError(
                    f"unknown ensemble member {member!r} "
                    f"(known: {sorted(MODEL_VARIANT_FACTORIES)})"
                )

    # -- per-route resolution -------------------------------------------
    def member_for(self, vantage_name: str, target_name: str) -> str:
        """The model variant serving one route (order-independent)."""
        draw = _unit(self.seed, "member", vantage_name, target_name)
        return self.members[int(draw * len(self.members))]

    def profile_for(
        self, vantage_name: str, target_name: str
    ) -> Optional[TemporalProfile]:
        """The route's temporal profile (``None`` with temporal off)."""
        if not self.temporal:
            return None
        if self.profile is not None:
            return self.profile
        low, high = self.ttl_drift
        base = 0.02 + 0.08 * _unit(self.seed, "base", vantage_name, target_name)
        amplitude = min(
            _MAX_GENERATED_SUPPRESSION - base,
            0.20 + 0.23 * _unit(self.seed, "amp", vantage_name, target_name),
        )
        return TemporalProfile(
            peak_hour=24.0 * _unit(self.seed, "peak", vantage_name, target_name),
            base_suppression=base,
            amplitude=amplitude,
            ttl_factor=(
                low
                + (high - low)
                * _unit(self.seed, "ttl", vantage_name, target_name)
            ),
        )

    def resolve(
        self, vantage_name: str, target_name: str
    ) -> Tuple[str, Optional[TemporalProfile]]:
        return (
            self.member_for(vantage_name, target_name),
            self.profile_for(vantage_name, target_name),
        )


#: The process-wide ensemble consulted by ``resolve_route``.  Module
#: state (not a scenario field) because the resolution must be reachable
#: from pickled process-pool workers without widening every task tuple;
#: the default is fixed so serial, pooled, and sharded runs agree.
DEFAULT_ROUTE_ENSEMBLE = RouteEnsemble()
_ACTIVE_ENSEMBLE: RouteEnsemble = DEFAULT_ROUTE_ENSEMBLE


def active_ensemble() -> RouteEnsemble:
    return _ACTIVE_ENSEMBLE


def set_active_ensemble(
    ensemble: Optional[RouteEnsemble],
) -> RouteEnsemble:
    """Install ``ensemble`` (``None`` restores the default); returns the
    previous one so callers can stack."""
    global _ACTIVE_ENSEMBLE
    previous = _ACTIVE_ENSEMBLE
    _ACTIVE_ENSEMBLE = ensemble if ensemble is not None else DEFAULT_ROUTE_ENSEMBLE
    return previous


@contextlib.contextmanager
def use_ensemble(ensemble: RouteEnsemble) -> Iterator[RouteEnsemble]:
    """Scoped ensemble override (tests, CLI sweeps)."""
    previous = set_active_ensemble(ensemble)
    try:
        yield ensemble
    finally:
        set_active_ensemble(previous)


def is_heterogeneous(variant: Optional[str]) -> bool:
    return variant == HETEROGENEOUS_VARIANT


def validate_variant(variant: str) -> None:
    """Accept any registered variant or ``heterogeneous`` (KeyError
    otherwise, listing the full axis)."""
    if is_heterogeneous(variant):
        return
    try:
        model_variant_configs(variant)
    except KeyError:
        known = sorted(MODEL_VARIANT_FACTORIES) + [HETEROGENEOUS_VARIANT]
        raise KeyError(
            f"unknown GFW variant {variant!r} (known: {known})"
        ) from None


def resolve_route(
    variant: Optional[str], vantage_name: str, target_name: str
) -> Tuple[Optional[str], Optional[TemporalProfile]]:
    """Map the variant axis to one route's concrete installation.

    Identity for ``None`` and every concrete variant (zero overhead and
    zero new telemetry on historical paths); for ``heterogeneous``,
    consults the active ensemble and counts the assignment.
    """
    if not is_heterogeneous(variant):
        return variant, None
    member, profile = _ACTIVE_ENSEMBLE.resolve(vantage_name, target_name)
    _METRIC_ROUTES_ASSIGNED.inc()
    return member, profile
