"""Streaming multi-pattern keyword matching (Aho–Corasick).

The historical DPI engine re-ran substring search over the *entire*
buffered stream on every in-order segment, making a flow's inspection
cost quadratic in its length — ruinous for 1-byte segmentations, which
several evasion strategies and the §4 inference experiments produce on
purpose.  This module compiles a rule set's keyword list once into an
Aho–Corasick automaton whose matcher cursor advances incrementally, so a
flow is inspected in O(total bytes) no matter how it is segmented, and
the cursor survives both segment boundaries and inspect-window trims
(the real GFW likewise bounds per-flow matching effort, §2.1).

Design notes:

- Automata are compiled per *keyword tuple* and memoized process-wide
  (:func:`compile_keywords`); every flow of every device then shares one
  immutable automaton, and only a tiny per-flow cursor (an integer state
  plus the set of matched keyword indices) lives in the flow's
  inspector.
- The automaton is built from plain lists/tuples and is picklable, so
  it survives the process-pool fan-out of
  :mod:`repro.experiments.parallel` (workers recompile into their own
  memo on first use when handed a bare :class:`~repro.gfw.rules.RuleSet`).
- Matching runs against the *lowered* stream — the historical engine
  lowercased payloads before substring search — which keeps detections
  byte-identical to the rescan path.
- Two execution strategies share the same automaton: short segments
  step the dense goto/fail-closed transition table byte by byte, while
  long segments use the vectorized :meth:`scan_window` path — the
  caller carries the last ``max_keyword_len - 1`` stream bytes as a raw
  tail, prepends it to the segment, and the pending keywords are
  located by C-speed substring search (any occurrence straddling the
  boundary lies fully inside that window).  The two cursor forms are
  interconverted only when the segment-size regime changes:
  :meth:`state_string` seeds a tail from an automaton state, and
  :meth:`advance` over a tail recovers the state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Segments at or below this length step the transition table per byte;
#: longer ones take the vectorized window-scan path.
SMALL_SEGMENT = 64


class KeywordAutomaton:
    """An immutable Aho–Corasick automaton over a keyword tuple.

    The per-flow matcher cursor is *external*: callers hold an integer
    state (0 = root) plus a set of matched keyword indices, and advance
    both through :meth:`advance` / :meth:`scan`.  That keeps this object
    shareable across every flow of every device in a process.
    """

    def __init__(self, keywords: Sequence[bytes]) -> None:
        self.keywords: Tuple[bytes, ...] = tuple(bytes(k) for k in keywords)
        self.max_keyword_len = max((len(k) for k in self.keywords), default=0)
        # -- trie ---------------------------------------------------------
        goto: List[Dict[int, int]] = [{}]
        outputs: List[Set[int]] = [set()]
        strings: List[bytes] = [b""]
        for index, keyword in enumerate(self.keywords):
            if not keyword:
                continue  # empty keywords match everywhere; see matches_empty
            state = 0
            for byte in keyword:
                nxt = goto[state].get(byte)
                if nxt is None:
                    goto.append({})
                    outputs.append(set())
                    strings.append(strings[state] + bytes([byte]))
                    nxt = len(goto) - 1
                    goto[state][byte] = nxt
                state = nxt
            outputs[state].add(index)
        # -- breadth-first failure links; outputs merge along them --------
        fail = [0] * len(goto)
        queue: List[int] = list(goto[0].values())
        head = 0
        while head < len(queue):
            state = queue[head]
            head += 1
            for byte, nxt in goto[state].items():
                queue.append(nxt)
                fallback = fail[state]
                while fallback and byte not in goto[fallback]:
                    fallback = fail[fallback]
                fail[nxt] = goto[fallback].get(byte, 0)
                outputs[nxt] |= outputs[fail[nxt]]
        # -- fail-closed dense transition table (the DFA view) ------------
        delta: List[List[int]] = [[0] * 256 for _ in goto]
        for byte, nxt in goto[0].items():
            delta[0][byte] = nxt
        for state in queue:  # BFS order: parents resolved first
            row = delta[state]
            row[:] = delta[fail[state]]
            for byte, nxt in goto[state].items():
                row[byte] = nxt
        self._delta = delta
        self._out: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in outputs
        )
        self._out_any = bytes(1 if s else 0 for s in outputs)
        self._state_strings: Tuple[bytes, ...] = tuple(strings)
        #: Indices of zero-length keywords: present in any stream, exactly
        #: as they were under substring rescan (``b"" in payload`` is True).
        self.matches_empty: Tuple[int, ...] = tuple(
            i for i, k in enumerate(self.keywords) if not k
        )

    # ------------------------------------------------------------------
    def advance(self, state: int, data: bytes, found: Set[int]) -> int:
        """Step the transition table over lowered ``data`` byte by byte.

        Indices of every keyword whose occurrence *ends* inside ``data``
        are added to ``found``; the new cursor state is returned.
        """
        delta = self._delta
        out_any = self._out_any
        out = self._out
        for byte in data:
            state = delta[state][byte]
            if out_any[state]:
                found.update(out[state])
        return state

    def scan_window(self, window: bytes, found: Set[int]) -> None:
        """Mark every pending keyword present in lowered ``window``.

        This is the vectorized execution of the automaton for long
        segments: the caller prepends its carried tail (the last
        ``max_keyword_len - 1`` stream bytes, which cover every match
        straddling the segment boundary) and the pending keywords are
        located by C-speed substring search instead of per-byte
        stepping.  Detection-equivalent to :meth:`advance`; occurrences
        are not positioned, which the DPI engine never needs.
        """
        for index, keyword in enumerate(self.keywords):
            if index not in found and keyword and keyword in window:
                found.add(index)

    def state_string(self, state: int) -> bytes:
        """The trie string of ``state``: every keyword prefix that could
        continue past the current stream position is one of its
        suffixes, so it seeds the window tail when switching from
        per-byte stepping to vectorized scanning."""
        return self._state_strings[state]

    # -- introspection / accounting ------------------------------------
    def state_count(self) -> int:
        return len(self._delta)

    def state_bytes(self) -> int:
        """Rough in-memory footprint of the compiled tables.

        Used by the device's resource accounting (``GFWDevice.stats``);
        the dense transition table dominates.
        """
        return 256 * 8 * len(self._delta) + sum(
            len(s) for s in self._state_strings
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KeywordAutomaton) and other.keywords == self.keywords
        )

    def __hash__(self) -> int:
        return hash(self.keywords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeywordAutomaton(keywords={len(self.keywords)}, "
            f"states={self.state_count()})"
        )


#: Process-wide memo: keyword tuple -> compiled automaton.  Rule sets are
#: tiny and few (one per GFW config), so this never needs eviction.
_AUTOMATON_MEMO: Dict[Tuple[bytes, ...], KeywordAutomaton] = {}


def compile_keywords(keywords: Iterable[bytes]) -> KeywordAutomaton:
    """The memoized compile step: one automaton per distinct keyword tuple.

    Rule sets hand in the same keyword tuple for every device of every
    trial, so the common case is a straight memo hit on the caller's
    tuple — key normalization (copying each keyword through ``bytes``)
    runs only on first sight of a key, not twice per trial.
    """
    if type(keywords) is tuple:
        try:
            automaton = _AUTOMATON_MEMO.get(keywords)
        except TypeError:  # unhashable members (e.g. bytearray): normalize
            automaton = None
        if automaton is not None:
            return automaton
    key = tuple(bytes(k) for k in keywords)
    automaton = _AUTOMATON_MEMO.get(key)
    if automaton is None:
        automaton = KeywordAutomaton(key)
        _AUTOMATON_MEMO[key] = automaton
    return automaton


def automaton_memo_size() -> int:
    """How many distinct automata this process has compiled (tests)."""
    return len(_AUTOMATON_MEMO)
