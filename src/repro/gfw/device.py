"""The GFW device: an on-path tap running the inferred state machine.

One :class:`GFWDevice` implements *both* generations of the model — the
prior-work model and the §4 evolved model — selected by its
:class:`~repro.gfw.models.GFWConfig`.  The state machine below is a
direct transcription of the paper's findings:

- TCB creation on SYN (both models) and on SYN/ACK (evolved, NB1), the
  latter *assuming the SYN/ACK's source is the server* — which is what
  TCB Reversal (§5.2) exploits;
- the RESYNC state entered on multiple client-side SYNs, multiple
  server-side SYN/ACKs, or a SYN/ACK acking an unexpected sequence
  number (NB2), and left by adopting the sequence number of the next
  client data packet or server SYN/ACK;
- RST/RST-ACK teardown that, on evolved devices, sometimes becomes a
  transition to RESYNC instead (NB3) — markedly more often during the
  handshake.  The paper observed this behaviour to be *consistent per
  path per period*, so the coin is flipped once per cluster, not per
  packet;
- no validation of checksums, MD5 options, timestamps, or ACK numbers
  (Table 3's GFW column), making all of §5.3's insertion packets land;
- first-wins IP-fragment reassembly, configurable TCP out-of-order
  preference (the generations differ), and first-wins in-order semantics
  via the shared :class:`~repro.tcp.reassembly.ReceiveBuffer`;
- type-1/type-2 reset signatures and the 90-second blacklist with forged
  SYN/ACKs (§2.1);
- UDP DNS poisoning and Tor active probing as pluggable components.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.netstack.fragment import FragmentReassembler
from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
    seq_add,
    seq_sub,
)

# Flag masks for the inlined per-packet dispatch in ``_process_tcp``.
_SYN_ACK_RST_FIN = SYN | ACK | RST | FIN
_SYN_ACK = SYN | ACK
from repro.netstack.wire import tcp_checksum_valid, wire_lengths
from repro.netstack.options import KIND_MD5SIG
from repro.netsim.path import Direction, Tap
from repro.netsim.simclock import SimClock
from repro.gfw.blacklist import Blacklist
from repro.gfw.cluster import GFWCluster
from repro.gfw.dpi import StreamInspector
from repro.gfw.flow import FlowTable, GFWFlow, GFWFlowState, connection_key
from repro.gfw.models import GFWConfig
from repro.gfw.resets import ResetInjector
from repro.gfw.rules import Detection
from repro.rngledger import as_trial_random
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry

# Process-lifetime registry instruments, resolved once at import: devices
# are rebuilt per trial, and nine name lookups per device showed up in
# sweep profiles.  Safe because MetricsRegistry.reset() zeroes counters in
# place rather than replacing them.
_REGISTRY = get_registry()
_METRIC_RST_SENT = _REGISTRY.counter("gfw.rst_sent")
_METRIC_SYNACK_FORGED = _REGISTRY.counter("gfw.synack_forged")
_METRIC_DPI_MATCH = _REGISTRY.counter("dpi.match")
_METRIC_DPI_MISS = _REGISTRY.counter("dpi.miss")
_METRIC_BYTES = _REGISTRY.counter("gfw.bytes_inspected")
_METRIC_TCB_CREATED = _REGISTRY.counter("gfw.tcb_created")
_METRIC_TEARDOWN = _REGISTRY.counter("gfw.tcb_teardown")
_METRIC_RESYNC_ENTERED = _REGISTRY.counter("gfw.resync_entered")
_METRIC_RESYNC_EXITED = _REGISTRY.counter("gfw.resync_exited")
#: TCB-creation-to-DPI-match sim-latency (seconds).  Sim times are
#: deterministic, so this histogram survives the parity pins.
_METRIC_DPI_MATCH_LATENCY = _REGISTRY.histogram(
    "dpi.match_latency",
    buckets=(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0),
)
#: Detections whose enforcement was suppressed by diurnal load — only
#: devices with a ``TemporalProfile`` installed (the ``heterogeneous``
#: route axis) ever increment it.
_METRIC_RESET_SUPPRESSED = _REGISTRY.counter("gfw.reset_suppressed_load")


class GFWDevice(Tap):
    """One censoring middlebox instance at a tap point."""

    #: The device never mutates observed packets and retains nothing past
    #: the synchronous observe call (fragments, the one retained case,
    #: are copied below), so the network may skip the defensive copy.
    observe_copies = False

    def __init__(
        self,
        name: str,
        hop: int,
        config: GFWConfig,
        clock: SimClock,
        rng: Optional[random.Random] = None,
        cluster: Optional[GFWCluster] = None,
    ) -> None:
        super().__init__(name, hop)
        self.config = config
        self.clock = clock
        self.rng = rng or random.Random(hash(name) & 0xFFFFFFFF)
        self.cluster = cluster or GFWCluster(self.rng, config.miss_probability)
        self.injector = ResetInjector(config.reset_type, self.rng, name)
        self.blacklist = Blacklist(config.blacklist_duration)
        self.flows: FlowTable = FlowTable(config.max_flows)
        #: Shared-device batch mode (fleet workloads): when set, every
        #: flow-table key is prefixed with this namespace so the flows of
        #: many multiplexed client trials stay distinct inside *one*
        #: shared :class:`FlowTable` even when their four-tuples collide.
        #: ``None`` (the default) keeps the historical un-prefixed keys.
        self.flow_namespace: Optional[int] = None
        self._fragments = FragmentReassembler(policy=config.ip_frag_policy)
        #: IPs blocked wholesale after Tor active probing (§7.3).
        self.blocked_ips: set = set()
        #: Measurement hooks.
        self.detections: List[Tuple[float, Detection]] = []
        self.missed_detections: List[Tuple[float, Detection]] = []
        self.resets_injected = 0
        self.forged_synacks_injected = 0
        #: Detections left unenforced by the diurnal load draw (Ensafi
        #: failure-to-inject; zero unless ``config.temporal`` is set).
        self.resets_suppressed = 0
        # The suppression coin must be a recordable semantic draw so the
        # replay ledger forks on it; scenario-built devices already hold
        # a TrialRandom, plain-RNG constructions (tests) get a same-state
        # wrapper.  Resolved once here — `_on_detection` is hot.
        self._temporal_rng = (
            as_trial_random(self.rng) if config.temporal is not None else None
        )
        #: Stream bytes handed to DPI inspectors (resource accounting).
        self.bytes_inspected = 0
        #: Optional components, wired by the scenario builder.
        self.dns_poisoner = None  # type: Optional[object]
        self.active_prober = None  # type: Optional[object]
        # Telemetry: process-lifetime registry instruments (merged across
        # the worker pool) and the structured event bus.  The per-device
        # attributes above stay authoritative for `stats()` because they
        # are zeroed between trials; the registry accumulates.
        self._bus = get_bus()
        self._metric_rst_sent = _METRIC_RST_SENT
        self._metric_synack_forged = _METRIC_SYNACK_FORGED
        self._metric_dpi_match = _METRIC_DPI_MATCH
        self._metric_dpi_miss = _METRIC_DPI_MISS
        self._metric_bytes = _METRIC_BYTES
        self._metric_tcb_created = _METRIC_TCB_CREATED
        self._metric_teardown = _METRIC_TEARDOWN
        self._metric_resync_entered = _METRIC_RESYNC_ENTERED
        self._metric_resync_exited = _METRIC_RESYNC_EXITED
        self.flows.on_evict = self._on_flow_evicted
        # NB3 behaviour is consistent per installation per period (§4, §8):
        # draw once per cluster and share across co-located devices.
        if not hasattr(self.cluster, "rst_resyncs_established"):
            self.cluster.rst_resyncs_established = self.cluster.rng.coin(
                config.resync_on_rst_probability
            )
            self.cluster.rst_resyncs_handshake = self.cluster.rng.coin(
                config.resync_on_rst_handshake_probability
            )

    # ------------------------------------------------------------------
    # Tap interface
    # ------------------------------------------------------------------
    def observe(self, packet: IPPacket, direction: Direction, now: float) -> None:
        # Inlined type dispatch: this runs for every packet at every tap,
        # so the is_fragment/is_udp/is_tcp property chain is unrolled.
        if packet.more_fragments or packet.frag_offset > 0:
            # Fragments are retained until the datagram completes, so the
            # reassembler must own a copy of the live packet (see
            # ``observe_copies``).
            whole = self._fragments.add(packet.copy())
            if whole is None:
                return
            packet = whole
        payload = packet.payload
        if payload.__class__ is TCPSegment:
            if packet.src in self.blocked_ips or packet.dst in self.blocked_ips:
                self._enforce_ip_block(packet, now)
                return
            self._process_tcp(packet, payload, now)
            return
        if payload.__class__ is UDPDatagram:
            if self.dns_poisoner is not None and self.config.dns_poisoning:
                self.dns_poisoner.handle(self, packet, direction, now)

    def reset_state(self) -> None:
        """Forget all flows and blacklists (between experiment trials)."""
        self.flows.reset()
        self.blacklist.clear()
        self._fragments = FragmentReassembler(policy=self.config.ip_frag_policy)
        self.bytes_inspected = 0
        self.cluster.new_trial()

    # ------------------------------------------------------------------
    # Telemetry helpers: every TCB state transition goes through these so
    # the event stream names the NB1/NB2/NB3 behaviour responsible.
    # ------------------------------------------------------------------
    def _enter_resync(self, flow: GFWFlow, cause: str) -> None:
        already = flow.state is GFWFlowState.RESYNC
        flow.state = GFWFlowState.RESYNC
        if already:
            return
        self._metric_resync_entered.inc()
        self._bus.publish(
            "gfw", "resync_enter", time=self.clock.now,
            device=self.name, namespace=self.flow_namespace, cause=cause,
        )

    def _exit_resync(self, flow: GFWFlow, seq: int, via: str) -> None:
        flow.resynchronize_to(seq, self.config.rules, self.config.tcp_ooo_policy)
        self._metric_resync_exited.inc()
        self._bus.publish(
            "gfw", "resync_exit", time=self.clock.now,
            device=self.name, namespace=self.flow_namespace,
            via=via, adopted_seq=seq & 0xFFFFFFFF,
        )

    def _on_flow_evicted(self, key: object, flow: GFWFlow) -> None:
        """Capacity eviction callback: name the flow the censor forgot.

        The event is the attribution hook for eviction-induced errors:
        an ``active`` eviction of a flow the DPI had not finished with is
        a censorship false negative in the making, and one evicted out of
        RESYNC loses the pending resynchronization entirely.
        """
        # Namespaced keys are ``(int, ConnKey)``; plain keys are ConnKey
        # 2-tuples of (ip, port) endpoints, so the int test disambiguates.
        namespace = (
            key[0]
            if isinstance(key, tuple) and key and isinstance(key[0], int)
            else None
        )
        self._bus.publish(
            "gfw", "flow_evicted", time=self.clock.now, device=self.name,
            namespace=namespace,
            state=flow.state.value,
            after_fin=flow.fin_seen,
            believed_client=f"{flow.believed_client[0]}:{flow.believed_client[1]}",
        )

    def _teardown(self, key: object, cause: str) -> None:
        del self.flows[key]
        self._metric_teardown.inc()
        self._bus.publish(
            "gfw", "tcb_teardown", time=self.clock.now,
            device=self.name, namespace=self.flow_namespace, cause=cause,
        )

    # ------------------------------------------------------------------
    # TCP state machine
    # ------------------------------------------------------------------
    def _process_tcp(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        src = (packet.src, segment.src_port)
        dst = (packet.dst, segment.dst_port)
        key = connection_key(src, dst)
        if self.flow_namespace is not None:
            key = (self.flow_namespace, key)

        if self.blacklist.contains(packet.src, packet.dst, now):
            self._enforce_blacklist(packet, segment, now)
            return

        # GFW-side acceptance checks (all off in both real configs —
        # exactly the discrepancies of Table 3 — but modelled so the
        # ablation benchmarks can turn them on as countermeasures, §8).
        if self.config.validates_checksum and not tcp_checksum_valid(
            segment, packet.src, packet.dst
        ):
            return
        if (
            self.config.drops_unsolicited_md5
            and segment.find_option(KIND_MD5SIG) is not None
        ):
            return
        if self.config.validates_tcp_header_length:
            if segment.data_offset_override is not None and segment.data_offset_override < 5:
                return
        if (
            self.config.validates_ip_total_length
            and packet.total_length_override is not None
        ):
            emitted, actual = wire_lengths(packet)
            if emitted > actual:
                return

        flow = self.flows.get(key)
        if flow is None:
            self._maybe_create_flow(key, packet, segment, now)
            return

        from_client = flow.from_believed_client(src)
        flags = segment.flags
        masked = flags & _SYN_ACK_RST_FIN
        if masked == SYN:
            self._on_syn(flow, key, from_client, segment)
            return
        if masked == _SYN_ACK:
            self._on_synack(flow, from_client, segment)
            return
        if flags & RST:
            self._on_rst(flow, key, segment)
            return
        if flags & FIN:
            flow.fin_seen = True
            if self.config.fin_tears_down:
                self._teardown(key, "fin")
                return
        self._on_data_or_ack(flow, key, from_client, segment, now)

    def _maybe_create_flow(
        self, key: object, packet: IPPacket, segment: TCPSegment, now: float
    ) -> None:
        src = (packet.src, segment.src_port)
        dst = (packet.dst, segment.dst_port)
        if segment.is_pure_syn:
            flow = GFWFlow(
                believed_client=src,
                believed_server=dst,
                state=GFWFlowState.ESTABLISHED,
                created_at=now,
                seq_window=self.config.seq_window,
            )
            flow.syn_count = 1
            flow.init_monitoring(
                seq_add(segment.seq, 1), self.config.rules, self.config.tcp_ooo_policy
            )
            self.flows[key] = flow
            self._metric_tcb_created.inc()
            self._bus.publish(
                "gfw", "tcb_create", time=now, device=self.name, on="syn",
                namespace=self.flow_namespace,
                believed_client=f"{src[0]}:{src[1]}",
                believed_server=f"{dst[0]}:{dst[1]}",
            )
            return
        if segment.is_synack and self.config.creates_tcb_on_synack:
            # NB1 — and the device assumes the SYN/ACK's *source* is the
            # server, which is what TCB Reversal turns against it.
            flow = GFWFlow(
                believed_client=dst,
                believed_server=src,
                state=GFWFlowState.ESTABLISHED,
                created_at=now,
                seq_window=self.config.seq_window,
            )
            flow.synack_count = 1
            flow.init_monitoring(
                segment.ack, self.config.rules, self.config.tcp_ooo_policy
            )
            flow.note_server_activity(seq_add(segment.seq, 1))
            self.flows[key] = flow
            self._metric_tcb_created.inc()
            self._bus.publish(
                "gfw", "tcb_create", time=now, device=self.name, on="synack",
                namespace=self.flow_namespace,
                believed_client=f"{dst[0]}:{dst[1]}",
                believed_server=f"{src[0]}:{src[1]}",
                note="NB1: SYN/ACK source assumed to be the server",
            )
        # Any other packet without a TCB is invisible to the censor —
        # the reason TCB-teardown evasion works at all.

    def _on_syn(
        self, flow: GFWFlow, key: object, from_client: bool, segment: TCPSegment
    ) -> None:
        if not from_client:
            # A SYN from the believed-server side (only happens on
            # reversed flows); observed to be ignored (§5.2).
            return
        flow.syn_count += 1
        if flow.syn_count >= 2 and self.config.supports_resync:
            # NB2(a): multiple client-side SYNs -> RESYNC.
            self._enter_resync(flow, "multiple client SYNs (NB2a)")
        # The old model keeps the TCB of the first SYN and ignores later
        # ones (prior assumption 2) — nothing else to do.

    def _on_synack(
        self, flow: GFWFlow, from_client: bool, segment: TCPSegment
    ) -> None:
        if from_client:
            # SYN/ACK arriving from the believed-client side: ignored
            # (§5.2: the reversal insertion does not trigger RESYNC on
            # the already-reversed flow).
            return
        flow.synack_count += 1
        flow.note_server_activity(seq_add(segment.seq, 1))
        if not self.config.supports_resync:
            return
        if flow.state is GFWFlowState.RESYNC:
            # NB2: the next server->client SYN/ACK resynchronizes.
            self._exit_resync(flow, segment.ack, "server SYN/ACK")
            return
        if flow.synack_count >= 2:
            # NB2(b): multiple SYN/ACKs from the server side.
            self._enter_resync(flow, "multiple server SYN/ACKs (NB2b)")
        elif segment.ack != flow.client_next_seq:
            # NB2(c): SYN/ACK acknowledging an unexpected number.
            self._enter_resync(flow, "SYN/ACK acking unexpected seq (NB2c)")

    def _on_rst(self, flow: GFWFlow, key: object, segment: TCPSegment) -> None:
        if not self.config.supports_resync:
            self._teardown(key, "rst")  # prior assumption 3: RST tears down
            return
        resyncs = (
            self.cluster.rst_resyncs_handshake
            if not flow.handshake_complete
            else self.cluster.rst_resyncs_established
        )
        if resyncs:
            self._enter_resync(flow, "RST during tracking (NB3)")
        else:
            self._teardown(key, "rst")

    def _on_data_or_ack(
        self,
        flow: GFWFlow,
        key: object,
        from_client: bool,
        segment: TCPSegment,
        now: float,
    ) -> None:
        if not from_client:
            if segment.payload:
                flow.note_server_activity(seq_add(segment.seq, len(segment.payload)))
            return
        if not segment.payload:
            # Pure ACKs neither resynchronize (§4) nor get inspected, but
            # they do tell the device the handshake went through.
            if flow.synack_count > 0:
                flow.handshake_complete = True
            return
        # -- believed-client data ------------------------------------------
        if segment.has_no_flags and not self.config.accepts_no_flag_data:
            return
        if self.config.requires_ack_flag and not segment.has_ack:
            return
        if (
            self.config.validates_ack_number
            and segment.has_ack
            and flow.server_seq_valid
        ):
            ack_offset = seq_sub(segment.ack, flow.server_next_seq)
            if not -flow.seq_window < ack_offset < flow.seq_window:
                return  # a minority of devices sanity-check ACK numbers
        if flow.state is GFWFlowState.RESYNC:
            # NB2: adopt this packet's sequence number.  This is the hook
            # the desynchronization building block (§5.1) abuses with an
            # out-of-window junk packet.
            self._exit_resync(flow, segment.seq, "client data")
        else:
            offset = seq_sub(segment.seq, flow.client_next_seq)
            if not -flow.seq_window < offset < flow.seq_window:
                return  # out-of-window: the device ignores it
        flow.handshake_complete = True
        assert flow.buffer is not None and flow.inspector is not None
        if self.config.stateless_mode:
            # §4's eliminated hypothesis (2): match each packet on its
            # own, no reassembly.  A keyword split across segments is
            # invisible to this design — which is how the paper proved
            # the real GFW does not work this way.
            from repro.gfw.dpi import StreamInspector

            one_shot = StreamInspector(self.config.rules)
            self.bytes_inspected += len(segment.payload)
            self._metric_bytes.inc(len(segment.payload))
            detection = one_shot.feed(segment.payload)
            flow.client_next_seq = seq_add(
                segment.seq, len(segment.payload)
            )
        else:
            delivered = flow.buffer.add(segment.seq, segment.payload)
            flow.client_next_seq = flow.buffer.rcv_nxt
            if not delivered:
                return
            self.bytes_inspected += len(delivered)
            self._metric_bytes.inc(len(delivered))
            detection = flow.inspector.feed(delivered)
        if detection is not None and not flow.punished:
            flow.punished = True
            self._on_detection(flow, key, detection, now)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def _on_detection(
        self, flow: GFWFlow, key: object, detection: Detection, now: float
    ) -> None:
        if self.cluster.flow_missed(flow.endpoints_key()):
            self.missed_detections.append((now, detection))
            self._metric_dpi_miss.inc()
            self._bus.publish(
                "gfw", "dpi_miss", time=now, device=self.name,
                namespace=self.flow_namespace,
                rule=detection.kind, detail=detection.detail,
                note="cluster overload draw: flow escapes tracking",
            )
            return
        self.detections.append((now, detection))
        self._metric_dpi_match.inc()
        # Dyadic quantization (multiples of 2^-20 s): keeps the
        # histogram's float sum bit-identical under any serial/sharded
        # worker grouping (see the fleet latency observation).
        _METRIC_DPI_MATCH_LATENCY.observe(
            round(max(0.0, now - flow.created_at) * 1048576.0) / 1048576.0
        )
        self._bus.publish(
            "gfw", "dpi_match", time=now, device=self.name,
            namespace=self.flow_namespace,
            rule=detection.kind, detail=detection.detail,
        )
        if detection.kind == "tor" and self.active_prober is not None:
            self.active_prober.schedule_probe(
                self, flow.believed_server[0], flow.believed_server[1], now
            )
            return
        temporal = self.config.temporal
        if temporal is not None and self._temporal_rng.coin(
            temporal.reset_suppression(self.config.sim_hour)
        ):
            # Ensafi failure-to-inject: the DPI match stands, but the
            # loaded injector emits no volley and records no blacklist
            # entry.  One recorded coin per detected flow (`flow.punished`
            # is already latched by the caller), so the replay tier forks
            # on the draw instead of silently diverging.
            self.resets_suppressed += 1
            _METRIC_RESET_SUPPRESSED.inc()
            self._bus.publish(
                "gfw", "reset_suppressed", time=now, device=self.name,
                namespace=self.flow_namespace,
                sim_hour=self.config.sim_hour,
                rule=detection.kind,
            )
            return
        self._punish(flow, now)
        if self.config.reset_type == 2:
            self.blacklist.add(
                flow.believed_client[0], flow.believed_server[0], now
            )
            self._bus.publish(
                "gfw", "blacklist_add", time=now, device=self.name,
                namespace=self.flow_namespace,
                client=flow.believed_client[0], server=flow.believed_server[0],
            )

    def _punish(self, flow: GFWFlow, now: float) -> None:
        """Inject the per-type reset volley toward both endpoints."""
        toward_client = self.injector.forged_resets(
            spoof_src=flow.believed_server,
            toward=flow.believed_client,
            seq_base=flow.server_next_seq if flow.server_seq_valid else 0,
            ack_hint=flow.client_next_seq,
        )
        toward_server = self.injector.forged_resets(
            spoof_src=flow.believed_client,
            toward=flow.believed_server,
            seq_base=flow.client_next_seq,
            ack_hint=flow.server_next_seq,
        )
        for packet in toward_client + toward_server:
            self._inject(packet)
            self.resets_injected += 1
            self._metric_rst_sent.inc()
        self._bus.publish(
            "gfw", "rst_sent", time=now, device=self.name,
            namespace=self.flow_namespace,
            count=len(toward_client) + len(toward_server),
            reset_type=self.config.reset_type,
        )

    def _enforce_blacklist(
        self, packet: IPPacket, segment: TCPSegment, now: float
    ) -> None:
        """§2.1: during the 90 s window, SYNs get forged SYN/ACKs (type-2
        only) and everything else gets reset pairs."""
        src = (packet.src, segment.src_port)
        dst = (packet.dst, segment.dst_port)
        if segment.is_pure_syn and self.config.reset_type == 2:
            forged = self.injector.forged_synack(
                spoof_src=dst, toward=src, acked_seq=segment.seq
            )
            self._inject(forged)
            self.forged_synacks_injected += 1
            self._metric_synack_forged.inc()
            self._bus.publish(
                "gfw", "synack_forged", time=now, device=self.name,
                namespace=self.flow_namespace,
                toward=f"{src[0]}:{src[1]}",
            )
            return
        if segment.is_rst:
            return  # nothing to disrupt
        seq_base = segment.ack if segment.has_ack else 0
        injected = 0
        for forged in self.injector.forged_resets(
            spoof_src=dst, toward=src, seq_base=seq_base, ack_hint=segment.end_seq
        ):
            self._inject(forged)
            self.resets_injected += 1
            self._metric_rst_sent.inc()
            injected += 1
        for forged in self.injector.forged_resets(
            spoof_src=src, toward=dst, seq_base=segment.end_seq, ack_hint=seq_base
        ):
            self._inject(forged)
            self.resets_injected += 1
            self._metric_rst_sent.inc()
            injected += 1
        self._bus.publish(
            "gfw", "rst_sent", time=now, device=self.name,
            namespace=self.flow_namespace,
            count=injected, note="blacklist enforcement",
        )

    def _enforce_ip_block(self, packet: IPPacket, now: float) -> None:
        """Whole-IP blocking after a confirmed Tor probe (§7.3)."""
        if not packet.is_tcp:
            return
        segment = packet.tcp
        if segment.is_rst:
            return
        src = (packet.src, segment.src_port)
        dst = (packet.dst, segment.dst_port)
        seq_base = segment.ack if segment.has_ack else 0
        injected = 0
        for forged in self.injector.forged_resets(
            spoof_src=dst, toward=src, seq_base=seq_base, ack_hint=segment.end_seq
        ):
            self._inject(forged)
            self.resets_injected += 1
            self._metric_rst_sent.inc()
            injected += 1
        self._bus.publish(
            "gfw", "rst_sent", time=now, device=self.name,
            namespace=self.flow_namespace,
            count=injected, note="ip block",
        )

    def block_ip(self, ip: str) -> None:
        self.blocked_ips.add(ip)

    def _inject(self, packet: IPPacket) -> None:
        """Route a forged packet toward whichever path end owns its dst."""
        if self.path is None:
            raise RuntimeError(f"GFW device {self.name} is not attached to a path")
        if packet.dst == self.path.client_ip:  # type: ignore[attr-defined]
            self.inject_toward_client(packet)
        else:
            self.inject_toward_server(packet)

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and the analysis package
    # ------------------------------------------------------------------
    def flow_for(
        self, ip_a: str, port_a: int, ip_b: str, port_b: int
    ) -> Optional[GFWFlow]:
        return self.flows.get(connection_key((ip_a, port_a), (ip_b, port_b)))

    def tracked_flow_count(self) -> int:
        return len(self.flows)

    def stats(self) -> Dict[str, int]:
        """A resource-accounting snapshot of this device.

        ``matcher_state_bytes`` sums the per-flow matcher cursors over
        the live flow table plus the (shared, counted once) compiled
        automaton — the quantity the streaming redesign bounds, where
        the rescan engine's cost grew with every buffered stream.

        Compatibility shim: the dict shape is frozen for existing tests
        and benches.  These per-device counters are zeroed by
        :meth:`reset_state` between trials; for process-lifetime,
        worker-mergeable accounting use the same quantities in the
        :class:`repro.telemetry.MetricsRegistry` (``gfw.*``, ``dpi.*``).
        """
        matcher_state_bytes = 0
        counted_automata: set = set()
        for flow in self.flows.values():
            inspector = flow.inspector
            if inspector is None:
                continue
            matcher_state_bytes += inspector.state_bytes
            automaton_id = id(inspector.automaton)
            if automaton_id not in counted_automata:
                counted_automata.add(automaton_id)
                matcher_state_bytes += inspector.automaton.state_bytes()
        return {
            "flows_tracked": len(self.flows),
            "flows_created": self.flows.flows_created,
            "flows_evicted": self.flows.flows_evicted,
            "flows_evicted_active": self.flows.flows_evicted_active,
            "flows_evicted_after_fin": self.flows.flows_evicted_after_fin,
            "peak_flows_tracked": self.flows.peak_tracked,
            "flow_table_capacity": self.flows.capacity,
            "bytes_inspected": self.bytes_inspected,
            "matcher_state_bytes": matcher_state_bytes,
            "detections": len(self.detections),
            "missed_detections": len(self.missed_detections),
            "resets_injected": self.resets_injected,
            "forged_synacks_injected": self.forged_synacks_injected,
        }
