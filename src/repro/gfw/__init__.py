"""Executable models of the Great Firewall.

The paper infers two generations of GFW behaviour and this package
implements both as configuration presets over one device implementation:

- :data:`~repro.gfw.models.OLD_GFW` — the Khattak-era model (§3.2 "prior
  assumptions"): TCB created only on SYN, torn down by RST/RST-ACK/FIN,
  out-of-order TCP segments resolved last-wins;
- :data:`~repro.gfw.models.EVOLVED_GFW` — the model inferred in §4: TCBs
  also created on SYN/ACK (NB1), a re-synchronization state entered on
  ambiguous handshakes (NB2), RSTs that sometimes resync instead of
  tearing down (NB3), and no FIN teardown.

A :class:`~repro.gfw.device.GFWDevice` is an on-path tap (it can observe
and inject, never drop).  Devices come in the two reset "types" of §2.1:
type-1 injects a single RST with random TTL/window; type-2 injects three
RST/ACKs at X, X+1460, X+4380, enforces the 90-second blacklist, and
forges SYN/ACKs during it.
"""

from repro.gfw.rules import Detection, RuleSet, DEFAULT_KEYWORDS
from repro.gfw.dpi import StreamInspector
from repro.gfw.flow import GFWFlow, GFWFlowState
from repro.gfw.resets import ResetInjector
from repro.gfw.blacklist import Blacklist
from repro.gfw.models import (
    EVOLVED_GFW,
    GFWConfig,
    MODEL_VARIANTS,
    OLD_GFW,
    evolved_config,
    model_variant_configs,
    old_config,
)
from repro.gfw.cluster import GFWCluster
from repro.gfw.device import GFWDevice
from repro.gfw.dns_poisoner import DNSPoisoner
from repro.gfw.active_prober import ActiveProber

__all__ = [
    "Detection",
    "RuleSet",
    "DEFAULT_KEYWORDS",
    "StreamInspector",
    "GFWFlow",
    "GFWFlowState",
    "ResetInjector",
    "Blacklist",
    "GFWConfig",
    "MODEL_VARIANTS",
    "OLD_GFW",
    "EVOLVED_GFW",
    "evolved_config",
    "model_variant_configs",
    "old_config",
    "GFWCluster",
    "GFWDevice",
    "DNSPoisoner",
    "ActiveProber",
]
