"""Configuration presets: the old (Khattak-era) and evolved GFW models.

Every behavioural difference the paper establishes between the model
assumed by prior work and the model it infers in §4 is a field of
:class:`GFWConfig`; :func:`old_config` and :func:`evolved_config` produce
the two presets, and experiments mix device instances of both (§7.1:
strategies are *combined* precisely because both generations co-exist on
real paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List

from repro.netstack.fragment import OverlapPolicy
from repro.gfw.blacklist import DEFAULT_BLACKLIST_DURATION
from repro.gfw.rules import RuleSet


@dataclass
class GFWConfig:
    """All knobs of one GFW device instance."""

    #: "old" or "evolved"; selects the state-machine generation.
    model: str = "evolved"
    #: Reset signature type (§2.1): 1 = RST/random TTL+window,
    #: 2 = RST/ACK ×3 with cyclic TTL+window, blacklist, forged SYN/ACKs.
    reset_type: int = 2
    rules: RuleSet = field(default_factory=RuleSet)

    # -- TCB lifecycle -------------------------------------------------------
    #: NB1: evolved devices create a TCB from a bare SYN/ACK.
    creates_tcb_on_synack: bool = True
    #: Prior assumption 3 vs evolved reality: FIN teardown.
    fin_tears_down: bool = False
    #: NB3: probability a RST puts the device in RESYNC instead of
    #: tearing the TCB down, after the handshake has completed…
    resync_on_rst_probability: float = 0.20
    #: …and during the handshake window, where the paper found it happens
    #: "way more frequently".
    resync_on_rst_handshake_probability: float = 0.80

    # -- resynchronization (NB2) ---------------------------------------------
    #: Whether the RESYNC state exists at all (False for the old model,
    #: which ignores later SYNs entirely).
    supports_resync: bool = True

    # -- hypothetical designs (§4's eliminated hypotheses) ---------------------
    #: §4 hypothesis (2): a "stateless mode" that matches keywords on
    #: each packet individually instead of reassembling first.  The
    #: paper *disproved* this for the real GFW (split keywords are still
    #: detected); the knob exists so that experiment is runnable.
    stateless_mode: bool = False

    # -- packet acceptance (the GFW-side of Table 3) -------------------------
    validates_checksum: bool = False
    drops_unsolicited_md5: bool = False
    checks_timestamps: bool = False
    validates_ack_number: bool = False
    validates_ip_total_length: bool = False
    validates_tcp_header_length: bool = False
    #: Some evolved device instances ignore flag-less segments; the ~50 %
    #: "no TCP flag" failure rate of Table 1 reflects a device mixture.
    accepts_no_flag_data: bool = True
    requires_ack_flag: bool = False

    # -- reassembly preferences -----------------------------------------------
    #: Out-of-order TCP segment overlap: the old model prefers the latter
    #: (Khattak), most evolved devices the former.
    tcp_ooo_policy: OverlapPolicy = OverlapPolicy.FIRST_WINS
    #: IP fragment overlap: both generations prefer the former (§3.2).
    ip_frag_policy: OverlapPolicy = OverlapPolicy.FIRST_WINS

    # -- operational ------------------------------------------------------------
    #: Maximum concurrent TCBs one device tracks; the least recently
    #: touched flow is evicted to admit a new one (§2.1: stateful
    #: tracking is costly, so the real device bounds it too).  The
    #: default comfortably covers every simulated trial — eviction only
    #: matters for the resource-exhaustion ablations.
    max_flows: int = 4096
    #: Probability (drawn once per flow, shared across the cluster) that
    #: an overloaded GFW fails to act on a flow; the paper measures a
    #: persistent ~2.8 % no-strategy success rate (§3.4).
    miss_probability: float = 0.028
    blacklist_duration: float = DEFAULT_BLACKLIST_DURATION
    #: Diurnal load profile (a :class:`repro.gfw.heterogeneity.
    #: TemporalProfile`, duck-typed to avoid the import cycle).  ``None``
    #: — the default for every registered variant — means no load
    #: modulation and, critically, no extra RNG draws: the historical
    #: draw order and every replay/golden pin stay byte-identical.
    #: Routes of the ``heterogeneous`` pseudo-variant get one installed
    #: at scenario build.
    temporal: object = None
    #: Simulated hour-of-day the trial runs at; only consulted when
    #: ``temporal`` is set (see ``Calibration.sim_hour``).
    sim_hour: float = 12.0
    #: Sequence window tolerated around the expected client seq.
    seq_window: int = 65535
    #: This device performs Tor active probing (§7.3: absent on paths
    #: from Northern China).
    tor_active_probing: bool = True
    #: UDP DNS poisoning enabled.
    dns_poisoning: bool = True

    def variant(self, **changes: object) -> "GFWConfig":
        """A copy with ``changes`` applied (rules shared intentionally)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def old_config(reset_type: int = 1, **changes: object) -> GFWConfig:
    """The model prior work assumed (§3.2 'prior assumptions')."""
    config = GFWConfig(
        model="old",
        reset_type=reset_type,
        creates_tcb_on_synack=False,
        fin_tears_down=True,
        resync_on_rst_probability=0.0,
        resync_on_rst_handshake_probability=0.0,
        supports_resync=False,
        tcp_ooo_policy=OverlapPolicy.LAST_WINS,
    )
    return config.variant(**changes) if changes else config


def evolved_config(reset_type: int = 2, **changes: object) -> GFWConfig:
    """The model inferred by §4 (new behaviors NB1–NB3)."""
    config = GFWConfig(model="evolved", reset_type=reset_type)
    return config.variant(**changes) if changes else config


#: Convenience presets.
OLD_GFW = old_config()
EVOLVED_GFW = evolved_config()


# ---------------------------------------------------------------------------
# Named model variants (conformance ablations)
# ---------------------------------------------------------------------------
#: Named installation variants for the differential conformance harness:
#: each maps to a factory producing the *exact* device configs of one
#: installation — no population draws — so a conformance cell's verdict is
#: a pure function of (strategy, variant, profile, fault point, seed).
#: The NB ablations flip one §4 finding at a time, which is what makes
#: the matrix differential: a strategy that exploits NB1 must flip its
#: verdict between ``evolved`` and ``evolved-nb1-off``.
MODEL_VARIANT_FACTORIES: Dict[str, Callable[[], List[GFWConfig]]] = {
    # The model prior work assumed (§3.2); Table 1's strategies were
    # designed against exactly this state machine.
    "old": lambda: [old_config(reset_type=1)],
    # The §4 evolved model with every new behaviour on, but the NB3 coin
    # pinned heads (RST always resyncs) so the variant is deterministic.
    "evolved": lambda: [
        evolved_config(
            resync_on_rst_probability=1.0,
            resync_on_rst_handshake_probability=1.0,
        )
    ],
    # NB1 ablation: no TCB from a bare SYN/ACK (§4 "TCB creation").
    "evolved-nb1-off": lambda: [
        evolved_config(
            creates_tcb_on_synack=False,
            resync_on_rst_probability=1.0,
            resync_on_rst_handshake_probability=1.0,
        )
    ],
    # NB2 ablation: the RESYNC state does not exist (§4 "resync state").
    "evolved-nb2-off": lambda: [
        evolved_config(
            supports_resync=False,
            resync_on_rst_probability=0.0,
            resync_on_rst_handshake_probability=0.0,
        )
    ],
    # NB3 ablation: RST always tears the TCB down, never resyncs.
    "evolved-nb3-off": lambda: [
        evolved_config(
            resync_on_rst_probability=0.0,
            resync_on_rst_handshake_probability=0.0,
        )
    ],
    # §7.1's reality: both generations co-exist on one path, which is why
    # the paper combines strategies.  Old device first by hop order is
    # irrelevant; evolved first so it seeds the cluster NB3 coin.
    "mixed": lambda: [
        evolved_config(
            resync_on_rst_probability=1.0,
            resync_on_rst_handshake_probability=1.0,
        ),
        old_config(reset_type=1),
    ],
}

#: Variant names in canonical matrix order.
MODEL_VARIANTS: List[str] = list(MODEL_VARIANT_FACTORIES)


def model_variant_configs(variant: str) -> List[GFWConfig]:
    """Fresh device configs for a named installation variant.

    A new list of new configs per call — conformance cells mutate
    ``miss_probability`` and ``rules`` per scenario, so sharing instances
    across cells would leak state between matrix cells.
    """
    try:
        factory = MODEL_VARIANT_FACTORIES[variant]
    except KeyError:
        raise KeyError(
            f"unknown GFW model variant {variant!r}; "
            f"known: {sorted(MODEL_VARIANT_FACTORIES)}"
        ) from None
    return factory()
