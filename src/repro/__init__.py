"""repro — a full reproduction of "Your State is Not Mine" (IMC '17).

Wang, Cao, Qian, Song & Krishnamurthy's paper measures TCP-level evasion
of the Great Firewall of China, infers an evolved GFW model, derives new
insertion packets via ignore-path analysis, proposes new evasion
strategies, and ships INTANG, a measurement-driven evasion tool.

This library rebuilds the entire stack on a deterministic discrete-event
simulator:

- :mod:`repro.netstack` — packets, checksums, TCP options, fragmentation;
- :mod:`repro.netsim`   — event clock, hop-by-hop paths, taps, middleboxes;
- :mod:`repro.tcp`      — endpoint TCP stacks with per-kernel behaviour;
- :mod:`repro.middlebox`— the Table 2 provider middlebox profiles;
- :mod:`repro.gfw`      — old and evolved GFW models, resets, DNS
  poisoning, Tor active probing;
- :mod:`repro.apps`     — HTTP, DNS, Tor, and OpenVPN workloads;
- :mod:`repro.strategies` — every evasion strategy of Tables 1 and 4;
- :mod:`repro.core`     — INTANG: interception, selection, caching, the
  DNS forwarder;
- :mod:`repro.analysis` — the §5.3 ignore-path analysis (Table 3/5);
- :mod:`repro.experiments` — vantage points, catalogs, and the trial
  runner that regenerates every table in the paper;
- :mod:`repro.telemetry` — the metrics registry, structured event bus,
  and per-trial diagnosis traces shared by all of the above.

Quickstart::

    from repro.experiments import (CHINA_VANTAGE_POINTS,
                                   outside_china_catalog, run_http_trial)
    vantage = CHINA_VANTAGE_POINTS[0]
    website = outside_china_catalog()[0]
    record = run_http_trial(vantage, website, "tcb-teardown+tcb-reversal")
    print(record.outcome)
"""

__version__ = "1.0.0"

__all__ = [
    "netstack",
    "netsim",
    "tcp",
    "middlebox",
    "gfw",
    "apps",
    "strategies",
    "core",
    "analysis",
    "experiments",
    "telemetry",
]
