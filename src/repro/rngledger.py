"""RNG-draw ledgers: the instrumentation layer under deterministic replay.

A trial's outcome is a pure function of its seed-driven RNG draws — the
topology, the calibration coins, the per-packet loss and jitter draws.
The replay tier (``repro.experiments.replay``) exploits this by recording
one trial's ordered draw sequence as a *ledger* of ``(site-spec,
value-bucket)`` entries, then deciding whether a later trial with a
different seed would have made the same decisions by re-deriving only the
RNG streams — never touching the event heap.

Three pieces live here:

- :class:`TrialRandom` — a ``random.Random`` subclass that behaves
  *bit-identically* to its parent (it overrides none of ``random``,
  ``getrandbits`` or ``seed`` at class level, so CPython's
  ``__init_subclass__`` keeps the exact ``_randbelow`` the parent uses)
  but can be *bound* to a ledger, at which point instance-attribute
  shadowing installs recording wrappers over the leaf draws.  It also
  grows semantic draw helpers (:meth:`TrialRandom.coin`,
  :meth:`TrialRandom.branch`, :meth:`TrialRandom.pick`,
  :meth:`TrialRandom.spawn`) that replicate the historical inline idioms
  draw-for-draw while recording a *bucket* (which side of the
  probability the roll fell on) instead of the raw float — the buckets,
  not the floats, are what decide control flow, so trials with different
  seeds can still match.

- :class:`RngLedger` — the per-trial recording: an ordered list of
  ``(spec, bucket)`` entries plus phase marks, opened/closed around a
  recorded trial via :func:`begin_ledger`/:func:`end_ledger`.

- :class:`StreamSet` — candidate verification: given a stored entry
  sequence and a *new* seed, re-derives that seed's RNG streams entry by
  entry and reports the bucket the candidate would draw at each site.
  Soundness is inductive: if the first *k* buckets match the recording,
  the candidate trial follows the same control path through the
  simulator, so its ``k+1``-th draw happens at the same site with the
  same spec.

Entry taxonomy (``spec`` is always a hashable tuple; ``bucket`` is the
recorded decision, or ``None`` for entries that cannot diverge):

========================  =====================================================
``("r", const)``          new root stream, seeded ``trial_seed ^ const``
``("s", parent, opq)``    child stream spawned from stream ``parent``
``("p", name)``           phase mark (setup/run boundary — fork accounting)
``("c", idx, p)``         coin: bucket is ``random() < p``
``("w", idx, weights)``   weighted branch: bucket is the chosen index
``("t", idx, thresh)``    threshold pick: bucket is the chosen index
``("f", idx)``            exact leaf ``random()``: bucket is the float
``("g", idx, k)``         exact leaf ``getrandbits(k)``: bucket is the int
``("o", idx, m, args)``   opaque method call on an opaque stream (no bucket)
========================  =====================================================

Opaque streams (``spawn(opaque=True)``) are for draws whose *values*
provably never influence control flow or recorded outcomes — the TCP
ISNs.  They record at *method* granularity (one entry per ``randrange``
call, advanced on verification by calling the same method), because the
underlying rejection sampling consumes a seed-dependent number of
``getrandbits`` draws and leaf-level entries would spuriously diverge.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "RngLedger",
    "StreamSet",
    "TrialRandom",
    "active_ledger",
    "as_trial_random",
    "begin_ledger",
    "end_ledger",
    "ledger_root",
]

#: Unbound parent methods: the raw C-speed draws, used by the semantic
#: helpers and the recording wrappers so an entry is never double-counted
#: by the instance-level leaf shadows.
_RAW_RANDOM = random.Random.random
_RAW_GETRANDBITS = random.Random.getrandbits


def _spawn_seed(rng: random.Random) -> int:
    """Bit-identical replication of ``rng.randrange(2**31)``.

    ``Random(rng.randrange(2**31))`` is the repo-wide child-stream idiom;
    CPython implements it as rejection sampling over ``getrandbits(32)``
    (``(2**31).bit_length() == 32``).  Replicating it here — instead of
    calling ``randrange`` — lets both bound TrialRandoms (whose
    ``getrandbits`` may be shadowed) and plain verification streams draw
    the child seed without recording intermediate entries.
    """
    value = _RAW_GETRANDBITS(rng, 32)
    while value >= 0x80000000:
        value = _RAW_GETRANDBITS(rng, 32)
    return value


class RngLedger:
    """The ordered draw fingerprint of one recorded trial."""

    __slots__ = ("trial_seed", "entries", "streams", "active")

    def __init__(self, trial_seed: int) -> None:
        self.trial_seed = trial_seed
        #: ``(spec, bucket)`` pairs in draw order.
        self.entries: List[Tuple[tuple, object]] = []
        #: Number of registered streams (next stream index).
        self.streams = 0
        #: Closed ledgers ignore stale draws from bound RNGs that outlive
        #: their trial (pooled object graphs) instead of corrupting the
        #: next recording.
        self.active = True

    def mark(self, name: str) -> None:
        """Append a phase boundary (``("p", name)``).

        The replay tier classifies divergence *after* the ``run`` mark as
        a fork (the setup/checkpoint prefix matched; only the run phase
        must be re-simulated) and divergence before it as a plain miss.
        """
        if self.active:
            self.entries.append((("p", name), None))

    def close(self) -> None:
        self.active = False


# ---------------------------------------------------------------------------
# The per-process recording context.  Trials are strictly serial within a
# process (workers are separate processes), so one slot suffices.
# ---------------------------------------------------------------------------
_ACTIVE: Optional[RngLedger] = None


def begin_ledger(trial_seed: int) -> RngLedger:
    """Open a recording context; roots created under it self-register."""
    global _ACTIVE
    ledger = RngLedger(trial_seed)
    _ACTIVE = ledger
    return ledger


def end_ledger() -> None:
    """Close the recording context (bound RNGs go quiet, not stale)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


def active_ledger() -> Optional[RngLedger]:
    return _ACTIVE


class TrialRandom(random.Random):
    """``random.Random`` with ledger recording and semantic draw helpers.

    Draw parity is the load-bearing property: this class overrides none
    of ``random``/``getrandbits``/``seed`` at class level, so
    ``Random.__init_subclass__`` keeps ``_randbelow_with_getrandbits``
    and every derived method (``randrange``, ``choice``, ``uniform``,
    ``shuffle``, …) consumes the underlying Mersenne Twister stream
    exactly as a plain ``Random(seed)`` would.  Recording is installed
    per *instance* by :meth:`bind` via attribute shadowing — the derived
    methods all reach their leaves through ``self.random`` /
    ``self.getrandbits`` lookups, which see the instance attributes.
    """

    def __init__(self, x=None) -> None:
        random.Random.__init__(self, x)
        self._ledger: Optional[RngLedger] = None
        self._stream = -1
        self._opaque = False

    # -- recording -------------------------------------------------------
    def bind(self, ledger: RngLedger, opaque: bool = False) -> None:
        """Register this RNG as the ledger's next stream and start
        recording its draws (leaf-level, or method-level when opaque)."""
        self._ledger = ledger
        self._stream = ledger.streams
        ledger.streams += 1
        self._opaque = opaque
        if opaque:
            self.randrange = self._recording_randrange
            self.randint = self._recording_randint
        else:
            self.random = self._recording_random
            self.getrandbits = self._recording_getrandbits

    def _recording_random(self) -> float:
        value = _RAW_RANDOM(self)
        ledger = self._ledger
        if ledger.active:
            ledger.entries.append((("f", self._stream), value))
        return value

    def _recording_getrandbits(self, k: int) -> int:
        value = _RAW_GETRANDBITS(self, k)
        ledger = self._ledger
        if ledger.active:
            ledger.entries.append((("g", self._stream, k), value))
        return value

    def _recording_randrange(self, start, stop=None, step=1):
        value = random.Random.randrange(self, start, stop, step)
        ledger = self._ledger
        if ledger.active:
            ledger.entries.append(
                (("o", self._stream, "randrange", (start, stop, step)), None)
            )
        return value

    def _recording_randint(self, a, b):
        value = random.Random.randint(self, a, b)
        ledger = self._ledger
        if ledger.active:
            ledger.entries.append((("o", self._stream, "randint", (a, b)), None))
        return value

    # -- semantic draws --------------------------------------------------
    def coin(self, probability: float) -> bool:
        """One ``random()`` draw, recorded as its boolean bucket.

        Replaces the ``rng.random() < p`` idiom draw-for-draw.
        """
        hit = _RAW_RANDOM(self) < probability
        ledger = self._ledger
        if ledger is not None and ledger.active:
            ledger.entries.append((("c", self._stream, probability), hit))
        return hit

    def branch(self, weights: Sequence[float]) -> int:
        """The historical weighted-choice loop, recorded as its index.

        Replicates ``roll = random() * sum(weights)`` followed by
        successive subtraction with a first-``roll <= 0`` break — including
        the fall-through-to-last-index quirk — bit-for-bit.
        """
        weights = tuple(weights)
        roll = _RAW_RANDOM(self) * sum(weights)
        index = len(weights) - 1
        for i, weight in enumerate(weights):
            roll -= weight
            if roll <= 0:
                index = i
                break
        ledger = self._ledger
        if ledger is not None and ledger.active:
            ledger.entries.append((("w", self._stream, weights), index))
        return index

    def pick(self, thresholds: Sequence[float]) -> int:
        """One draw against ascending thresholds, recorded as its index.

        Replicates ``roll < t0 → 0; roll < t1 → 1; … else len(t)`` with
        the original comparisons — the call sites' threshold sums (e.g.
        ``a`` then ``a + b``) are preserved verbatim, so no floating-point
        re-association can change a verdict.
        """
        thresholds = tuple(thresholds)
        roll = _RAW_RANDOM(self)
        index = len(thresholds)
        for i, threshold in enumerate(thresholds):
            if roll < threshold:
                index = i
                break
        ledger = self._ledger
        if ledger is not None and ledger.active:
            ledger.entries.append((("t", self._stream, thresholds), index))
        return index

    def spawn(self, opaque: bool = False) -> "TrialRandom":
        """A child stream — ``Random(self.randrange(2**31))``, recorded.

        ``opaque=True`` marks the child's *values* as provably outcome-
        neutral (TCP ISNs); its draws then record at method granularity.
        """
        child = TrialRandom(_spawn_seed(self))
        ledger = self._ledger
        if ledger is not None and ledger.active:
            ledger.entries.append((("s", self._stream, opaque), None))
            child.bind(ledger, opaque=opaque)
        return child


def ledger_root(seed: int, salt: int = 0) -> TrialRandom:
    """``TrialRandom(seed ^ salt)``, registered as a root stream when a
    ledger is recording.

    The entry stores ``const = (seed ^ salt) ^ trial_seed`` so
    verification can seed the candidate's root as ``cand_seed ^ const``
    — for the repo's two root idioms (scenario root: ``Random(seed)``;
    INTANG root: ``Random(seed ^ 0x5EED)``) the const collapses to the
    salt and the reconstruction is exact for any candidate seed.
    """
    rng = TrialRandom(seed ^ salt)
    ledger = _ACTIVE
    if ledger is not None and ledger.active:
        ledger.entries.append((("r", (seed ^ salt) ^ ledger.trial_seed), None))
        rng.bind(ledger)
    return rng


def as_trial_random(rng: Optional[random.Random]) -> Optional[TrialRandom]:
    """Coerce a plain ``Random`` into an unbound :class:`TrialRandom`
    with the *same generator state* (``getstate``/``setstate``), so call
    sites converted to the semantic draw helpers keep working — and keep
    drawing identical values — when handed a plain RNG (tests, the fleet
    engine, default constructors)."""
    if rng is None or isinstance(rng, TrialRandom):
        return rng
    wrapped = TrialRandom()
    wrapped.setstate(rng.getstate())
    return wrapped


class StreamSet:
    """Candidate-side reconstruction of a recorded trial's RNG streams.

    Feeding the stored specs through :meth:`advance` in ledger order
    derives, for the *candidate* seed, the bucket that seed would produce
    at each recorded site — pure RNG work, no simulation.
    """

    __slots__ = ("trial_seed", "streams")

    def __init__(self, trial_seed: int) -> None:
        self.trial_seed = trial_seed
        self.streams: List[random.Random] = []

    def advance(self, spec: tuple) -> object:
        """Consume one entry spec; returns the candidate's bucket (or
        ``None`` for entries that cannot diverge)."""
        kind = spec[0]
        if kind == "c":
            return _RAW_RANDOM(self.streams[spec[1]]) < spec[2]
        if kind == "f":
            return _RAW_RANDOM(self.streams[spec[1]])
        if kind == "g":
            return _RAW_GETRANDBITS(self.streams[spec[1]], spec[2])
        if kind == "w":
            weights = spec[2]
            roll = _RAW_RANDOM(self.streams[spec[1]]) * sum(weights)
            index = len(weights) - 1
            for i, weight in enumerate(weights):
                roll -= weight
                if roll <= 0:
                    index = i
                    break
            return index
        if kind == "t":
            thresholds = spec[2]
            roll = _RAW_RANDOM(self.streams[spec[1]])
            index = len(thresholds)
            for i, threshold in enumerate(thresholds):
                if roll < threshold:
                    index = i
                    break
            return index
        if kind == "s":
            self.streams.append(random.Random(_spawn_seed(self.streams[spec[1]])))
            return None
        if kind == "o":
            getattr(random.Random, spec[2])(self.streams[spec[1]], *spec[3])
            return None
        if kind == "r":
            self.streams.append(random.Random(self.trial_seed ^ spec[1]))
            return None
        if kind == "p":
            return None
        raise ValueError(f"unknown ledger entry kind {kind!r}")
