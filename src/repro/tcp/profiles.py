"""Per-kernel-version TCP behaviour profiles.

§5.3 cross-validates the Linux 4.4 ignore paths against 4.0, 3.14,
2.6.34, and 2.4.37 and reports three divergences, all encoded here:

1. Linux 3.14 *ignores* a SYN arriving in ESTABLISHED, while 4.x sends a
   challenge ACK and pre-3.x may reset the connection (RFC 793 rules);
2. Linux 2.6.34 and 2.4.37 accept data segments that carry *no ACK flag*
   (so the "no TCP flag" insertion packet fails against them — the
   "variations in server implementations" failure of §3.4);
3. Linux 2.4.37 predates RFC 2385 support, so unsolicited MD5-signature
   options are not a reason to drop.

Profiles also set the RST-validation policy (RFC 5961 challenge ACKs
landed in Linux 3.6) and whether PAWS timestamp checking applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netstack.fragment import OverlapPolicy


class SynInEstablishedPolicy(enum.Enum):
    """What an established connection does with an incoming SYN."""

    #: RFC 5961 §4: never accept, reply with a rate-limited challenge ACK.
    CHALLENGE_ACK = "challenge-ack"
    #: Silently ignore (observed on Linux 3.14, §5.3).
    IGNORE = "ignore"
    #: RFC 793: a SYN in the receive window resets the connection.
    RESET = "reset"


class RstPolicy(enum.Enum):
    """How strictly incoming RSTs are validated."""

    #: RFC 5961 §3: accept only seq == rcv_nxt; in-window -> challenge ACK.
    EXACT_SEQ = "exact-seq"
    #: RFC 793: accept any in-window sequence number.
    IN_WINDOW = "in-window"


@dataclass(frozen=True)
class StackProfile:
    """The complete knob set for one endpoint TCP implementation."""

    name: str
    #: Drop segments whose transport checksum is wrong (all real stacks).
    validates_checksum: bool = True
    #: Drop segments with an unsolicited RFC 2385 MD5 signature option.
    drops_unsolicited_md5: bool = True
    #: Drop data segments that do not carry the ACK flag.
    requires_ack_flag: bool = True
    #: Drop segments failing the PAWS timestamp check.
    paws_check: bool = True
    #: Ignore ACK-bearing segments whose ack number is unacceptable
    #: (outside [snd_una - max_window, snd_nxt]); RFC 5961 §5 behaviour.
    validates_ack_number: bool = True
    rst_policy: RstPolicy = RstPolicy.EXACT_SEQ
    syn_in_established: SynInEstablishedPolicy = SynInEstablishedPolicy.CHALLENGE_ACK
    #: Overlap preference for queued out-of-order segments.
    ooo_overlap: OverlapPolicy = OverlapPolicy.FIRST_WINS
    #: Whether the stack negotiates and echoes TCP timestamps.
    use_timestamps: bool = True
    #: Whether a stray SYN/ACK to a closed/listening port elicits a RST.
    rst_on_stray_packets: bool = True

    def describe(self) -> str:
        return (
            f"{self.name}: md5drop={self.drops_unsolicited_md5} "
            f"ackflag={self.requires_ack_flag} paws={self.paws_check} "
            f"rst={self.rst_policy.value} syn_est={self.syn_in_established.value}"
        )


#: The reference stack of the paper's ignore-path analysis (§5.3, Table 3).
LINUX_4_4 = StackProfile(name="linux-4.4")

#: Behaves like 4.4 for everything the paper measures.
LINUX_4_0 = StackProfile(name="linux-4.0")

#: Ignores SYN in ESTABLISHED instead of sending a challenge ACK.
LINUX_3_14 = StackProfile(
    name="linux-3.14",
    syn_in_established=SynInEstablishedPolicy.IGNORE,
)

#: Pre-RFC 5961; accepts no-ACK-flag data segments.
LINUX_2_6_34 = StackProfile(
    name="linux-2.6.34",
    requires_ack_flag=False,
    validates_ack_number=False,
    rst_policy=RstPolicy.IN_WINDOW,
    syn_in_established=SynInEstablishedPolicy.RESET,
)

#: Also predates the MD5 signature option entirely.
LINUX_2_4_37 = StackProfile(
    name="linux-2.4.37",
    drops_unsolicited_md5=False,
    requires_ack_flag=False,
    validates_ack_number=False,
    rst_policy=RstPolicy.IN_WINDOW,
    syn_in_established=SynInEstablishedPolicy.RESET,
    use_timestamps=False,
)

ALL_PROFILES = (LINUX_4_4, LINUX_4_0, LINUX_3_14, LINUX_2_6_34, LINUX_2_4_37)


def profile_by_name(name: str) -> StackProfile:
    """Look up a profile by its kernel-version name.

    >>> profile_by_name("linux-3.14").syn_in_established.value
    'ignore'
    """
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown stack profile {name!r}")
