"""Receive-side sequence-space reassembly with overlap preferences.

The "data reassembly" family of evasion strategies (§3.2) turns on how a
receiver resolves two kinds of conflict:

- **in-order overlap** — a second segment arrives covering bytes at or
  below ``rcv_nxt``: every implementation (server and GFW alike) keeps the
  data it already consumed, so a junk segment that arrives *first* and is
  only seen by the GFW permanently poisons the GFW's stream;
- **out-of-order overlap** — two queued segments cover the same range:
  implementations differ (first-wins vs last-wins), and the divergence
  between the GFW's preference and the server's is itself an evasion
  channel.

:class:`ReceiveBuffer` implements both, parameterized by
:class:`~repro.netstack.fragment.OverlapPolicy`, and is shared by the
endpoint stacks and the GFW's stream reassembler so the discrepancy is a
configuration difference, not two divergent code bases.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netstack.fragment import OverlapPolicy
from repro.netstack.packet import seq_sub


class ReceiveBuffer:
    """Sequence-space byte accumulator for one direction of a connection.

    Bytes before ``rcv_nxt`` are trimmed on arrival (in-order, first wins
    by construction).  Bytes at or beyond ``rcv_nxt`` are merged under the
    configured overlap policy; whenever a contiguous run starting at
    ``rcv_nxt`` exists, :meth:`add` returns it and advances ``rcv_nxt``.
    """

    def __init__(
        self,
        rcv_nxt: int,
        policy: OverlapPolicy = OverlapPolicy.FIRST_WINS,
        window: int = 65535,
    ) -> None:
        self.rcv_nxt = rcv_nxt & 0xFFFFFFFF
        self.policy = policy
        self.window = window
        #: relative offset from rcv_nxt -> byte value, for pending bytes
        self._pending: Dict[int, int] = {}
        #: total payload bytes ever delivered in order
        self.delivered_bytes = 0

    def add(self, seq: int, data: bytes) -> bytes:
        """Merge ``data`` at ``seq``; return newly in-order bytes (may be b"").

        Data entirely outside the receive window is ignored (the caller is
        responsible for the duplicate-ACK response).
        """
        if not data:
            return b""
        offset = seq_sub(seq, self.rcv_nxt)
        if offset + len(data) <= 0:
            return b""  # entirely old data
        if offset < 0:
            data = data[-offset:]
            offset = 0
        if offset >= self.window:
            return b""  # entirely beyond the window
        if offset + len(data) > self.window:
            data = data[: self.window - offset]
        if offset == 0 and not self._pending:
            # In-order data with nothing queued — the overwhelmingly
            # common case.  The overlap policy cannot matter (there is
            # nothing to conflict with), so skip the byte map entirely.
            self.rcv_nxt = (self.rcv_nxt + len(data)) & 0xFFFFFFFF
            self.delivered_bytes += len(data)
            return data
        pending = self._pending
        if self.policy is OverlapPolicy.FIRST_WINS:
            for i, value in enumerate(data):
                position = offset + i
                if position not in pending:
                    pending[position] = value
        else:
            for i, value in enumerate(data):
                pending[offset + i] = value
        return self._drain()

    def _drain(self) -> bytes:
        """Extract the contiguous run at offset 0, if any."""
        run = bytearray()
        while len(run) in self._pending:
            run.append(self._pending.pop(len(run)))
        if not run:
            return b""
        delivered = bytes(run)
        shift = len(delivered)
        self.rcv_nxt = (self.rcv_nxt + shift) & 0xFFFFFFFF
        self._pending = {
            position - shift: value for position, value in self._pending.items()
        }
        self.delivered_bytes += shift
        return delivered

    def advance(self, new_rcv_nxt: int) -> None:
        """Jump ``rcv_nxt`` forward (used for SYN/FIN sequence space)."""
        shift = seq_sub(new_rcv_nxt, self.rcv_nxt)
        if shift < 0:
            raise ValueError("cannot move rcv_nxt backwards")
        self.rcv_nxt = new_rcv_nxt & 0xFFFFFFFF
        self._pending = {
            position - shift: value
            for position, value in self._pending.items()
            if position >= shift
        }

    def pending_bytes(self) -> int:
        """Number of buffered out-of-order bytes."""
        return len(self._pending)

    def has_gap(self) -> bool:
        return bool(self._pending)
