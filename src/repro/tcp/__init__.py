"""TCP endpoint stacks with per-Linux-version behaviour profiles.

The paper's §5.3 "ignore path" analysis is an analysis of *real* endpoint
TCP implementations: which incoming packets does a server silently ignore
while the GFW still processes them?  To reproduce that analysis — and to
make the evasion strategies succeed or fail for mechanistic reasons — we
implement a compact but faithful TCP state machine with the behaviours
that matter parameterized per kernel version:

- transport checksum validation;
- RFC 2385 MD5-signature option rejection (Linux ≥ 2.6, Table 3 row 6);
- RFC 5961 challenge ACKs for RST and for SYN-in-ESTABLISHED (Linux ≥ 4.0);
- PAWS timestamp checking (Table 3 last row);
- ACK-flag requirement on data segments (absent before Linux 3.x);
- out-of-order segment reassembly with a configurable overlap preference.
"""

from repro.tcp.tcb import TCB, TCPState
from repro.tcp.reassembly import ReceiveBuffer
from repro.tcp.profiles import (
    LINUX_2_4_37,
    LINUX_2_6_34,
    LINUX_3_14,
    LINUX_4_0,
    LINUX_4_4,
    ALL_PROFILES,
    RstPolicy,
    StackProfile,
    SynInEstablishedPolicy,
)
from repro.tcp.stack import TCPConnection, TCPHost

__all__ = [
    "TCB",
    "TCPState",
    "ReceiveBuffer",
    "LINUX_2_4_37",
    "LINUX_2_6_34",
    "LINUX_3_14",
    "LINUX_4_0",
    "LINUX_4_4",
    "ALL_PROFILES",
    "RstPolicy",
    "StackProfile",
    "SynInEstablishedPolicy",
    "TCPConnection",
    "TCPHost",
]
