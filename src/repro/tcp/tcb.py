"""The TCP Control Block and state enumeration.

Both endpoints and the GFW keep TCBs; the entire evasion literature this
paper builds on (Ptacek & Newsham 1998 onward) is about making the GFW's
copy of this structure diverge from the server's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class TCPState(enum.Enum):
    """RFC 793 connection states (plus nothing exotic)."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECV = "SYN_RECV"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    @property
    def can_receive_data(self) -> bool:
        """States in which new payload bytes can still be consumed.

        §5.3 prunes ignore-path analysis to exactly these states (plus
        LISTEN for connection establishment).
        """
        return self in (
            TCPState.SYN_RECV,
            TCPState.ESTABLISHED,
            TCPState.FIN_WAIT_1,
            TCPState.FIN_WAIT_2,
        )


@dataclass
class TCB:
    """Connection state shared by our endpoint stack implementations."""

    local_ip: str
    local_port: int
    remote_ip: str
    remote_port: int
    state: TCPState = TCPState.CLOSED
    #: Initial send sequence number.
    iss: int = 0
    #: Initial receive sequence number (peer's ISS).
    irs: int = 0
    #: Oldest unacknowledged sequence number we sent.
    snd_una: int = 0
    #: Next sequence number we will send.
    snd_nxt: int = 0
    #: Next sequence number we expect from the peer.
    rcv_nxt: int = 0
    #: Peer's advertised receive window.
    snd_wnd: int = 65535
    #: Our advertised receive window.
    rcv_wnd: int = 65535
    #: Most recent valid peer TSval (PAWS state); None until first seen.
    ts_recent: Optional[int] = None
    #: True when the connection negotiated RFC 2385 MD5 signatures.
    md5_negotiated: bool = False
    #: Peer used the timestamp option on its SYN.
    timestamps_enabled: bool = False

    def four_tuple(self) -> Tuple[str, int, str, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def describe(self) -> str:
        return (
            f"{self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} [{self.state.value}] "
            f"snd_una={self.snd_una} snd_nxt={self.snd_nxt} rcv_nxt={self.rcv_nxt}"
        )
