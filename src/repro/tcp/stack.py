"""A compact, behaviour-faithful TCP endpoint stack.

This is the "server model" of §5.3: every silent-drop decision ("ignore
path") that the paper's analysis of Linux 4.4 identified is an explicit,
individually testable branch here, and each branch records *why* a packet
was ignored (see :class:`DropReason`) so the ignore-path analysis in
:mod:`repro.analysis` can enumerate them mechanically rather than by
reading kernel source.

The same class implements the client role, so INTANG's interception layer
sees a realistic handshake and data exchange to manipulate.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.netstack.options import (
    KIND_MD5SIG,
    KIND_TIMESTAMP,
    MSSOption,
    TimestampOption,
)
from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    seq_add,
    seq_sub,
)
from repro.netstack.wire import tcp_checksum_valid, wire_lengths
from repro.netsim.node import Host
from repro.netsim.simclock import EventHandle, SimClock
from repro.tcp.profiles import (
    LINUX_4_4,
    RstPolicy,
    StackProfile,
    SynInEstablishedPolicy,
)
from repro.tcp.reassembly import ReceiveBuffer
from repro.tcp.tcb import TCB, TCPState

#: Default maximum segment size, the constant behind the GFW's
#: X+1460 / X+4380 forged reset sequence numbers (§2.1).
DEFAULT_MSS = 1460

#: Retransmission parameters. Values are small because simulated paths
#: have ~80 ms RTTs; the goal is surviving injected loss, not congestion
#: control fidelity.
INITIAL_RTO = 0.25
MAX_RETRIES = 5
TIME_WAIT_DURATION = 1.0


class DropReason(enum.Enum):
    """Why the stack silently ignored a packet (the §5.3 ignore paths)."""

    IP_LENGTH_MISMATCH = "ip-total-length-mismatch"
    BAD_TCP_HEADER_LEN = "tcp-header-length-short"
    BAD_CHECKSUM = "bad-checksum"
    UNSOLICITED_MD5 = "unsolicited-md5-option"
    NO_ACK_FLAG = "data-without-ack-flag"
    BAD_ACK_NUMBER = "unacceptable-ack-number"
    PAWS_OLD_TIMESTAMP = "timestamp-too-old"
    RST_BAD_SEQ = "rst-out-of-window"
    RST_CHALLENGE = "rst-in-window-challenged"
    RST_BAD_ACK_SYNRECV = "rst-ack-mismatch-in-syn-recv"
    SYN_IN_ESTABLISHED = "syn-in-established"
    OUT_OF_WINDOW = "sequence-out-of-window"
    STATE_CLOSED = "connection-closed"
    DUPLICATE_SYN = "duplicate-syn"


class CloseReason(enum.Enum):
    NORMAL = "normal"
    RESET = "reset"
    TIMEOUT = "retransmission-timeout"
    REFUSED = "refused"


class TCPConnection:
    """One endpoint's view of a TCP connection."""

    def __init__(
        self,
        tcp_host: "TCPHost",
        tcb: TCB,
        profile: StackProfile,
        clock: SimClock,
    ) -> None:
        self.host = tcp_host
        self.tcb = tcb
        self.profile = profile
        self.clock = clock
        self.receive_buffer: Optional[ReceiveBuffer] = None
        # Application callbacks.
        self.on_established: Optional[Callable[["TCPConnection"], None]] = None
        self.on_data: Optional[Callable[["TCPConnection", bytes], None]] = None
        self.on_close: Optional[Callable[["TCPConnection", CloseReason], None]] = None
        # Measurement bookkeeping.
        self.received_rsts: List[IPPacket] = []
        self.drop_log: List[Tuple[DropReason, str]] = []
        self.challenge_acks_sent = 0
        self.close_reason: Optional[CloseReason] = None
        self.application_data = bytearray()
        # Retransmission machinery.
        self._unacked: List[Dict[str, object]] = []
        self._rto_handle: Optional[EventHandle] = None
        self._rto = INITIAL_RTO
        self._fin_sent = False
        self._last_tsval_sent = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def state(self) -> TCPState:
        return self.tcb.state

    @property
    def is_established(self) -> bool:
        return self.tcb.state is TCPState.ESTABLISHED

    @property
    def is_closed(self) -> bool:
        return self.tcb.state is TCPState.CLOSED

    def send(self, data: bytes, segment_size: int = DEFAULT_MSS) -> None:
        """Queue and transmit application data as one or more segments."""
        if self.tcb.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise RuntimeError(f"cannot send in state {self.tcb.state.value}")
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + segment_size]
            segment = self._make_segment(ACK, payload=chunk)
            self.tcb.snd_nxt = seq_add(self.tcb.snd_nxt, len(chunk))
            self._queue_for_retransmit(segment)
            self._transmit(segment)
            offset += len(chunk)

    def close(self) -> None:
        """Initiate a graceful close (send FIN)."""
        if self.tcb.state is TCPState.ESTABLISHED:
            self.tcb.state = TCPState.FIN_WAIT_1
        elif self.tcb.state is TCPState.CLOSE_WAIT:
            self.tcb.state = TCPState.LAST_ACK
        else:
            return
        segment = self._make_segment(FIN | ACK)
        self.tcb.snd_nxt = seq_add(self.tcb.snd_nxt, 1)
        self._fin_sent = True
        self._queue_for_retransmit(segment)
        self._transmit(segment)

    def abort(self) -> None:
        """Send a RST and drop to CLOSED immediately."""
        if self.tcb.state not in (TCPState.CLOSED, TCPState.LISTEN):
            segment = self._make_segment(RST | ACK)
            self._transmit(segment, retransmittable=False)
        self._enter_closed(CloseReason.NORMAL)

    def make_packet(
        self,
        flags: int,
        seq: Optional[int] = None,
        ack: Optional[int] = None,
        payload: bytes = b"",
        **overrides: object,
    ) -> IPPacket:
        """Craft an arbitrary packet on this connection's four-tuple.

        Evasion strategies use this to build insertion packets that share
        the connection's addressing but carry manipulated fields.  Nothing
        is transmitted and no connection state changes.
        """
        segment = TCPSegment(
            src_port=self.tcb.local_port,
            dst_port=self.tcb.remote_port,
            seq=self.tcb.snd_nxt if seq is None else seq,
            ack=self.tcb.rcv_nxt if ack is None else ack,
            flags=flags,
            window=self.tcb.rcv_wnd,
            payload=payload,
        )
        for name, value in overrides.items():
            setattr(segment, name, value)
        return IPPacket(src=self.tcb.local_ip, dst=self.tcb.remote_ip, payload=segment)

    # ------------------------------------------------------------------
    # Segment transmission internals
    # ------------------------------------------------------------------
    def _make_segment(self, flags: int, payload: bytes = b"") -> TCPSegment:
        options = []
        if self.tcb.timestamps_enabled:
            self._last_tsval_sent = int(self.clock.now * 1000) & 0xFFFFFFFF
            options.append(
                TimestampOption(
                    tsval=self._last_tsval_sent,
                    tsecr=self.tcb.ts_recent or 0,
                )
            )
        return TCPSegment(
            src_port=self.tcb.local_port,
            dst_port=self.tcb.remote_port,
            seq=self.tcb.snd_nxt,
            ack=self.tcb.rcv_nxt if flags & ACK else 0,
            flags=flags,
            window=self.tcb.rcv_wnd,
            payload=payload,
            options=options,
        )

    def _transmit(self, segment: TCPSegment, retransmittable: bool = True) -> None:
        packet = IPPacket(
            src=self.tcb.local_ip, dst=self.tcb.remote_ip, payload=segment.copy()
        )
        self.host.host.send(packet)

    def _queue_for_retransmit(self, segment: TCPSegment) -> None:
        self._unacked.append({"segment": segment.copy(), "retries": 0})
        self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
        self._rto_handle = self.clock.schedule(self._rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_handle = None
        if not self._unacked or self.tcb.state is TCPState.CLOSED:
            return
        for entry in self._unacked:
            entry["retries"] = int(entry["retries"]) + 1
            if entry["retries"] > MAX_RETRIES:
                self._enter_closed(CloseReason.TIMEOUT)
                return
        for entry in self._unacked:
            segment: TCPSegment = entry["segment"]  # type: ignore[assignment]
            refreshed = segment.copy()
            if refreshed.flags & ACK:
                refreshed.ack = self.tcb.rcv_nxt
            self._transmit(refreshed, retransmittable=False)
        self._rto = min(self._rto * 2, 4.0)
        self._arm_rto()

    def _handle_ack_advance(self, ack: int) -> None:
        if seq_sub(ack, self.tcb.snd_una) <= 0:
            return
        self.tcb.snd_una = ack
        still_unacked = []
        for entry in self._unacked:
            segment: TCPSegment = entry["segment"]  # type: ignore[assignment]
            if seq_sub(segment.end_seq, ack) > 0:
                still_unacked.append(entry)
        self._unacked = still_unacked
        if self._unacked:
            self._arm_rto()
        elif self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
            self._rto = INITIAL_RTO

    def _send_ack(self) -> None:
        self._transmit(self._make_segment(ACK), retransmittable=False)

    def _send_challenge_ack(self) -> None:
        self.challenge_acks_sent += 1
        self._send_ack()

    def _send_rst(self, seq: int, with_ack: Optional[int] = None) -> None:
        flags = RST if with_ack is None else RST | ACK
        segment = TCPSegment(
            src_port=self.tcb.local_port,
            dst_port=self.tcb.remote_port,
            seq=seq,
            ack=with_ack or 0,
            flags=flags,
            window=0,
        )
        self._transmit(segment, retransmittable=False)

    def _enter_closed(self, reason: CloseReason) -> None:
        if self.tcb.state is TCPState.CLOSED:
            return
        self.tcb.state = TCPState.CLOSED
        self.close_reason = reason
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
        self._unacked.clear()
        if self.on_close is not None:
            self.on_close(self, reason)

    def _drop(self, reason: DropReason, detail: str = "") -> None:
        self.drop_log.append((reason, detail))
        self.host.drops.append((self.tcb.four_tuple(), reason))

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def segment_arrived(self, packet: IPPacket, now: float) -> None:
        """Full receive-side processing for one delivered packet."""
        segment = packet.tcp
        if self.tcb.state is TCPState.CLOSED:
            if segment.is_rst:
                self.received_rsts.append(packet)
            else:
                self._drop(DropReason.STATE_CLOSED)
            return
        # -- universal ignore paths (any state, any flags) -----------------
        if not self._universal_checks_pass(packet, segment):
            return
        handler = self._STATE_DISPATCH.get(self.tcb.state)
        if handler is not None:
            handler(self, packet, segment, now)

    def _universal_checks_pass(self, packet: IPPacket, segment: TCPSegment) -> bool:
        if packet.total_length_override is not None:
            # Only an explicit override can make emitted != actual.
            emitted, actual = wire_lengths(packet)
            if emitted > actual:
                self._drop(DropReason.IP_LENGTH_MISMATCH, f"{emitted}>{actual}")
                return False
        if segment.data_offset_override is not None and segment.data_offset_override < 5:
            self._drop(DropReason.BAD_TCP_HEADER_LEN)
            return False
        if self.profile.validates_checksum and not tcp_checksum_valid(
            segment, packet.src, packet.dst
        ):
            self._drop(DropReason.BAD_CHECKSUM)
            return False
        if (
            self.profile.drops_unsolicited_md5
            and not self.tcb.md5_negotiated
            and segment.find_option(KIND_MD5SIG) is not None
        ):
            self._drop(DropReason.UNSOLICITED_MD5)
            return False
        return True

    # -- per-state handlers ------------------------------------------------
    def _in_syn_sent(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        if segment.is_rst:
            if segment.has_ack and segment.ack == self.tcb.snd_nxt:
                self.received_rsts.append(packet)
                self._enter_closed(CloseReason.REFUSED)
            else:
                self._drop(DropReason.RST_BAD_SEQ, "syn-sent ack mismatch")
            return
        if segment.is_synack:
            if segment.ack != self.tcb.snd_nxt:
                # RFC 793: bad ack in SYN_SENT elicits a RST (seq = seg.ack).
                self._send_rst(seq=segment.ack)
                return
            self.tcb.irs = segment.seq
            self.tcb.rcv_nxt = seq_add(segment.seq, 1)
            self._handle_ack_advance(segment.ack)
            self.receive_buffer = ReceiveBuffer(
                self.tcb.rcv_nxt, policy=self.profile.ooo_overlap
            )
            option = segment.find_option(KIND_TIMESTAMP)
            if option is not None and self.profile.use_timestamps:
                self.tcb.timestamps_enabled = True
                self.tcb.ts_recent = option.tsval  # type: ignore[union-attr]
            self.tcb.state = TCPState.ESTABLISHED
            self._send_ack()
            if self.on_established is not None:
                self.on_established(self)
            return
        # Anything else in SYN_SENT is ignored.
        self._drop(DropReason.OUT_OF_WINDOW, "non-synack in syn-sent")

    def _in_syn_recv(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        if segment.is_rst:
            # Table 3 row 4: RST/ACK with the wrong ack number is ignored.
            if segment.has_ack and segment.ack != self.tcb.snd_nxt:
                self._drop(DropReason.RST_BAD_ACK_SYNRECV)
                return
            if segment.seq != self.tcb.rcv_nxt:
                self._drop(DropReason.RST_BAD_SEQ)
                return
            self.received_rsts.append(packet)
            self._enter_closed(CloseReason.RESET)
            return
        if segment.is_pure_syn:
            # Retransmitted SYN: re-send our SYN/ACK.
            self._retransmit_synack()
            return
        if not segment.has_ack:
            if self.profile.requires_ack_flag:
                self._drop(DropReason.NO_ACK_FLAG)
                return
        elif segment.ack != self.tcb.snd_nxt:
            # Table 3 row 5: wrong ack number in SYN_RECV -> ignored.
            self._drop(DropReason.BAD_ACK_NUMBER, "syn-recv")
            return
        else:
            self._handle_ack_advance(segment.ack)
        if not self._paws_ok(segment):
            return
        self.tcb.state = TCPState.ESTABLISHED
        if self.on_established is not None:
            self.on_established(self)
        if segment.payload or segment.is_fin:
            self._consume_data(segment, now)

    def _retransmit_synack(self) -> None:
        options = [MSSOption(mss=DEFAULT_MSS)]
        if self.tcb.timestamps_enabled:
            options.append(
                TimestampOption(
                    tsval=int(self.clock.now * 1000) & 0xFFFFFFFF,
                    tsecr=self.tcb.ts_recent or 0,
                )
            )
        segment = TCPSegment(
            src_port=self.tcb.local_port,
            dst_port=self.tcb.remote_port,
            seq=self.tcb.iss,
            ack=self.tcb.rcv_nxt,
            flags=SYN | ACK,
            window=self.tcb.rcv_wnd,
            options=options,
        )
        self._transmit(segment, retransmittable=False)

    def _in_established(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        if segment.is_rst:
            self._process_rst(packet, segment)
            return
        if segment.is_syn:
            self._process_syn_in_established(segment)
            return
        if not segment.has_ack:
            if self.profile.requires_ack_flag:
                self._drop(DropReason.NO_ACK_FLAG)
                return
        elif self.profile.validates_ack_number and not self._ack_acceptable(segment.ack):
            self._drop(DropReason.BAD_ACK_NUMBER)
            return
        if not self._paws_ok(segment):
            return
        if segment.has_ack:
            self._handle_ack_advance(segment.ack)
            self.tcb.snd_wnd = segment.window
            self._maybe_progress_close_states(segment)
        self._consume_data(segment, now)

    def _in_closing_states(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        if segment.is_rst:
            self._process_rst(packet, segment)
            return
        if segment.has_ack:
            self._handle_ack_advance(segment.ack)
            if seq_sub(self.tcb.snd_una, self.tcb.snd_nxt) >= 0:
                if self.tcb.state is TCPState.LAST_ACK:
                    self._enter_closed(CloseReason.NORMAL)
                elif self.tcb.state is TCPState.CLOSING:
                    self._enter_time_wait()

    def _in_time_wait(self, packet: IPPacket, segment: TCPSegment, now: float) -> None:
        if segment.is_rst:
            self.received_rsts.append(packet)
            self._enter_closed(CloseReason.RESET)
            return
        self._send_ack()

    # -- shared receive helpers --------------------------------------------
    def _process_rst(self, packet: IPPacket, segment: TCPSegment) -> None:
        if self.profile.rst_policy is RstPolicy.EXACT_SEQ:
            if segment.seq == self.tcb.rcv_nxt:
                self.received_rsts.append(packet)
                self._enter_closed(CloseReason.RESET)
            elif self._seq_in_window(segment.seq):
                # RFC 5961 §3: in-window but inexact -> challenge ACK.
                self.drop_log.append((DropReason.RST_CHALLENGE, ""))
                self._send_challenge_ack()
            else:
                self._drop(DropReason.RST_BAD_SEQ)
            return
        if self._seq_in_window(segment.seq):
            self.received_rsts.append(packet)
            self._enter_closed(CloseReason.RESET)
        else:
            self._drop(DropReason.RST_BAD_SEQ)

    def _process_syn_in_established(self, segment: TCPSegment) -> None:
        policy = self.profile.syn_in_established
        if policy is SynInEstablishedPolicy.CHALLENGE_ACK:
            self.drop_log.append((DropReason.SYN_IN_ESTABLISHED, "challenged"))
            self._send_challenge_ack()
        elif policy is SynInEstablishedPolicy.IGNORE:
            self._drop(DropReason.SYN_IN_ESTABLISHED, "ignored")
        else:  # RFC 793 RESET behaviour of old kernels
            if self._seq_in_window(segment.seq):
                self._send_rst(seq=self.tcb.snd_nxt)
                self._enter_closed(CloseReason.RESET)
            else:
                self._drop(DropReason.SYN_IN_ESTABLISHED, "out of window")

    def _ack_acceptable(self, ack: int) -> bool:
        """RFC 5961 §5 acceptable-ACK range check."""
        if seq_sub(ack, self.tcb.snd_nxt) > 0:
            return False  # acking data never sent
        if seq_sub(self.tcb.snd_una, ack) > self.tcb.rcv_wnd:
            return False  # too old
        return True

    def _paws_ok(self, segment: TCPSegment) -> bool:
        if not (self.profile.paws_check and self.tcb.timestamps_enabled):
            return True
        option = segment.find_option(KIND_TIMESTAMP)
        if option is None:
            return True
        tsval = option.tsval  # type: ignore[union-attr]
        if self.tcb.ts_recent is not None and seq_sub(tsval, self.tcb.ts_recent) < 0:
            self._drop(DropReason.PAWS_OLD_TIMESTAMP, f"tsval={tsval}")
            self._send_ack()  # Linux sends a dup-ACK on PAWS failure
            return False
        if segment.seq == self.tcb.rcv_nxt or seq_sub(segment.seq, self.tcb.rcv_nxt) < 0:
            self.tcb.ts_recent = tsval
        return True

    def _seq_in_window(self, seq: int) -> bool:
        offset = seq_sub(seq, self.tcb.rcv_nxt)
        return -1 <= offset < self.tcb.rcv_wnd

    def _consume_data(self, segment: TCPSegment, now: float) -> None:
        if self.receive_buffer is None:
            self.receive_buffer = ReceiveBuffer(
                self.tcb.rcv_nxt, policy=self.profile.ooo_overlap
            )
        if segment.payload:
            offset = seq_sub(segment.seq, self.tcb.rcv_nxt)
            if offset >= self.tcb.rcv_wnd or offset + len(segment.payload) <= 0:
                # Entirely outside the window: duplicate ACK, data ignored.
                self._drop(DropReason.OUT_OF_WINDOW)
                self._send_ack()
                return
            delivered = self.receive_buffer.add(segment.seq, segment.payload)
            self.tcb.rcv_nxt = self.receive_buffer.rcv_nxt
            if delivered:
                self.application_data.extend(delivered)
                if self.on_data is not None:
                    self.on_data(self, delivered)
            self._send_ack()
        if segment.is_fin:
            fin_seq = seq_add(segment.seq, len(segment.payload))
            if fin_seq == self.tcb.rcv_nxt:
                self.tcb.rcv_nxt = seq_add(self.tcb.rcv_nxt, 1)
                if self.receive_buffer is not None:
                    self.receive_buffer.advance(self.tcb.rcv_nxt)
                self._send_ack()
                self._process_fin()

    def _process_fin(self) -> None:
        if self.tcb.state in (TCPState.ESTABLISHED, TCPState.SYN_RECV):
            self.tcb.state = TCPState.CLOSE_WAIT
            if self.on_close is not None:
                self.on_close(self, CloseReason.NORMAL)
        elif self.tcb.state is TCPState.FIN_WAIT_1:
            self.tcb.state = TCPState.CLOSING
        elif self.tcb.state is TCPState.FIN_WAIT_2:
            self._enter_time_wait()

    def _maybe_progress_close_states(self, segment: TCPSegment) -> None:
        if not self._fin_sent:
            return
        fin_acked = seq_sub(self.tcb.snd_una, self.tcb.snd_nxt) >= 0
        if self.tcb.state is TCPState.FIN_WAIT_1 and fin_acked:
            self.tcb.state = TCPState.FIN_WAIT_2
        elif self.tcb.state is TCPState.LAST_ACK and fin_acked:
            self._enter_closed(CloseReason.NORMAL)

    def _enter_time_wait(self) -> None:
        self.tcb.state = TCPState.TIME_WAIT
        self.clock.schedule(
            TIME_WAIT_DURATION, lambda: self._enter_closed(CloseReason.NORMAL)
        )


# Built once: segment_arrived dispatches per packet, so the table must not
# be rebuilt per call (entries are unbound methods, called with self).
TCPConnection._STATE_DISPATCH = {
    TCPState.SYN_SENT: TCPConnection._in_syn_sent,
    TCPState.SYN_RECV: TCPConnection._in_syn_recv,
    TCPState.ESTABLISHED: TCPConnection._in_established,
    TCPState.FIN_WAIT_1: TCPConnection._in_established,
    TCPState.FIN_WAIT_2: TCPConnection._in_established,
    TCPState.CLOSE_WAIT: TCPConnection._in_established,
    TCPState.LAST_ACK: TCPConnection._in_closing_states,
    TCPState.CLOSING: TCPConnection._in_closing_states,
    TCPState.TIME_WAIT: TCPConnection._in_time_wait,
}


class TCPHost:
    """Demultiplexes TCP packets on one :class:`~repro.netsim.node.Host`.

    Owns the listener table, the connection table, and the "stray packet"
    policy: a packet matching no connection elicits a RST (real servers do
    this, and it is exactly why the TCB-reversal SYN/ACK insertion packet
    must be TTL-limited — §5.2).
    """

    def __init__(
        self,
        host: Host,
        clock: SimClock,
        profile: StackProfile = LINUX_4_4,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.clock = clock
        self.profile = profile
        self.rng = rng or random.Random(hash(host.ip) & 0xFFFFFFFF)
        self.connections: Dict[Tuple[int, str, int], TCPConnection] = {}
        self.listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self.drops: List[Tuple[Tuple[str, int, str, int], DropReason]] = []
        #: RSTs we emitted for stray packets (visible to tests).
        self.stray_rsts_sent = 0
        self._ephemeral_port = 32768
        host.register_handler(self._on_packet)

    def reset(
        self,
        profile: Optional[StackProfile] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Restore pristine state in place (scenario reuse between trials).

        The owning :class:`Host` must have been reset first (dropping the
        old packet handler); this re-registers ``_on_packet`` so handler
        order matches a freshly constructed stack.
        """
        if profile is not None:
            self.profile = profile
        self.rng = rng or random.Random(hash(self.host.ip) & 0xFFFFFFFF)
        self.connections.clear()
        self.listeners.clear()
        self.drops.clear()
        self.stray_rsts_sent = 0
        self._ephemeral_port = 32768
        self.host.register_handler(self._on_packet)

    # -- API ----------------------------------------------------------------
    def listen(
        self, port: int, on_accept: Optional[Callable[[TCPConnection], None]] = None
    ) -> None:
        """Accept connections on ``port``; ``on_accept(conn)`` runs at
        handshake completion."""
        self.listeners[port] = on_accept or (lambda connection: None)

    def connect(
        self,
        dst_ip: str,
        dst_port: int,
        src_port: Optional[int] = None,
    ) -> TCPConnection:
        """Active-open a connection; returns immediately with SYN_SENT."""
        if src_port is None:
            src_port = self._ephemeral_port
            self._ephemeral_port += 1
            if self._ephemeral_port > 60999:
                self._ephemeral_port = 32768
        iss = self.rng.randrange(0, 2**32)
        tcb = TCB(
            local_ip=self.host.ip,
            local_port=src_port,
            remote_ip=dst_ip,
            remote_port=dst_port,
            state=TCPState.SYN_SENT,
            iss=iss,
            snd_una=iss,
            snd_nxt=seq_add(iss, 1),
        )
        connection = TCPConnection(self, tcb, self.profile, self.clock)
        self.connections[(src_port, dst_ip, dst_port)] = connection
        options = [MSSOption(mss=DEFAULT_MSS)]
        if self.profile.use_timestamps:
            tcb.timestamps_enabled = True
            options.append(
                TimestampOption(tsval=int(self.clock.now * 1000) & 0xFFFFFFFF)
            )
        syn = TCPSegment(
            src_port=src_port,
            dst_port=dst_port,
            seq=iss,
            flags=SYN,
            window=tcb.rcv_wnd,
            options=options,
        )
        connection._queue_for_retransmit(syn)
        connection._transmit(syn)
        return connection

    def purge_closed(self) -> int:
        """Drop CLOSED connections from the table; returns how many."""
        closed = [
            key
            for key, connection in self.connections.items()
            if connection.tcb.state is TCPState.CLOSED
        ]
        for key in closed:
            del self.connections[key]
        return len(closed)

    # -- packet entry ---------------------------------------------------------
    def _on_packet(self, packet: IPPacket, now: float) -> bool:
        # Unrolled is_tcp/tcp property pair: this runs for every packet
        # delivered to the host.
        segment = packet.payload
        if segment.__class__ is not TCPSegment or packet.dst != self.host.ip:
            return False
        key = (segment.dst_port, packet.src, segment.src_port)
        connection = self.connections.get(key)
        if connection is not None:
            connection.segment_arrived(packet, now)
            return True
        if segment.dst_port in self.listeners:
            self._listener_packet(packet, segment, now)
            return True
        self._stray_packet(packet, segment)
        return True

    def _listener_packet(
        self, packet: IPPacket, segment: TCPSegment, now: float
    ) -> None:
        if not segment.is_pure_syn:
            self._stray_packet(packet, segment)
            return
        # Universal ignore paths also gate connection creation.
        if not tcp_checksum_valid(segment, packet.src, packet.dst):
            if self.profile.validates_checksum:
                return
        if (
            self.profile.drops_unsolicited_md5
            and segment.find_option(KIND_MD5SIG) is not None
        ):
            return
        emitted, actual = wire_lengths(packet)
        if emitted > actual:
            return
        iss = self.rng.randrange(0, 2**32)
        tcb = TCB(
            local_ip=self.host.ip,
            local_port=segment.dst_port,
            remote_ip=packet.src,
            remote_port=segment.src_port,
            state=TCPState.SYN_RECV,
            iss=iss,
            irs=segment.seq,
            snd_una=iss,
            snd_nxt=seq_add(iss, 1),
            rcv_nxt=seq_add(segment.seq, 1),
        )
        connection = TCPConnection(self, tcb, self.profile, self.clock)
        timestamp = segment.find_option(KIND_TIMESTAMP)
        if timestamp is not None and self.profile.use_timestamps:
            tcb.timestamps_enabled = True
            tcb.ts_recent = timestamp.tsval  # type: ignore[union-attr]
        key = (segment.dst_port, packet.src, segment.src_port)
        self.connections[key] = connection
        on_accept = self.listeners[segment.dst_port]
        connection.on_established = lambda conn: on_accept(conn)
        connection.receive_buffer = ReceiveBuffer(
            tcb.rcv_nxt, policy=self.profile.ooo_overlap
        )
        connection._retransmit_synack()

    def _stray_packet(self, packet: IPPacket, segment: TCPSegment) -> None:
        """RFC 793 reset generation for packets matching no connection."""
        if segment.is_rst or not self.profile.rst_on_stray_packets:
            return
        if not tcp_checksum_valid(segment, packet.src, packet.dst):
            return
        if (
            self.profile.drops_unsolicited_md5
            and segment.find_option(KIND_MD5SIG) is not None
        ):
            return
        self.stray_rsts_sent += 1
        if segment.has_ack:
            reply = TCPSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=segment.ack,
                flags=RST,
                window=0,
            )
        else:
            reply = TCPSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=0,
                ack=seq_add(segment.seq, max(segment.seg_len, 1)),
                flags=RST | ACK,
                window=0,
            )
        self.host.send(
            IPPacket(src=self.host.ip, dst=packet.src, payload=reply)
        )
