"""The §5.3 "ignore path" analysis, executable.

The paper's method: model the server's TCP stack, enumerate the program
paths on which an incoming packet is *silently ignored* (state
unchanged), derive the constraint for each path, emit a candidate
insertion packet per constraint, and keep the candidates the GFW still
*accepts* — those are usable insertion packets (Table 3).  Candidates
are then cross-validated against other kernel versions (the §5.3
version notes) and against middlebox profiles (which prunes the set
down to Table 5's preferred constructions).

Because our server stack is an executable model whose every ignore
branch is an explicit :class:`~repro.tcp.stack.DropReason`, the
enumeration here is *dynamic*: each candidate packet is fired at a live
server in the target TCP state and at a live GFW device, and the
verdict is read from their actual state, not from source inspection.
"""

from repro.analysis.ignore_paths import (
    IgnoreProbe,
    IgnoreVerdict,
    STANDARD_PROBES,
    ServerHarness,
    run_ignore_path_analysis,
)
from repro.analysis.probe import GFWHarness, gfw_accepts_probe
from repro.analysis.discrepancy import (
    DiscrepancyRow,
    cross_validate_middleboxes,
    cross_validate_stacks,
    derive_table5,
    generate_table3,
)
from repro.analysis.inconsistency import (
    InconsistencyReport,
    VerdictDistribution,
    run_inconsistency,
    wilson_interval,
)

__all__ = [
    "IgnoreProbe",
    "IgnoreVerdict",
    "STANDARD_PROBES",
    "ServerHarness",
    "run_ignore_path_analysis",
    "GFWHarness",
    "gfw_accepts_probe",
    "DiscrepancyRow",
    "cross_validate_middleboxes",
    "cross_validate_stacks",
    "derive_table5",
    "generate_table3",
    "InconsistencyReport",
    "VerdictDistribution",
    "run_inconsistency",
    "wilson_interval",
]
