"""Server-side ignore-path enumeration (§5.3, server half of Table 3).

A :class:`ServerHarness` drives a live server stack into a chosen TCP
state with hand-crafted packets (no client stack in the way), snapshots
the connection's TCB, fires one probe packet, and classifies the result:

- ``IGNORED`` — the TCB is unchanged and the stack logged a silent-drop
  reason (possibly an ACK was emitted, like the PAWS duplicate ACK —
  still an ignore path per the paper's definition);
- ``ACCEPTED`` — the TCB moved (sequence numbers advanced, state
  changed, or the connection died).

Each :class:`IgnoreProbe` corresponds to one Table 3 condition; probes
are parameterized by target state so SYN_RECV/ESTABLISHED rows run in
both states.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netstack.options import MD5SignatureOption, MSSOption, TimestampOption
from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    seq_add,
)
from repro.netsim.network import Network, Path
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.tcp.profiles import LINUX_4_4, StackProfile
from repro.tcp.stack import TCPConnection, TCPHost
from repro.tcp.tcb import TCPState

CLIENT_IP = "10.9.0.2"
SERVER_IP = "198.51.100.80"
CLIENT_PORT = 45000
SERVER_PORT = 80


class IgnoreVerdict(enum.Enum):
    IGNORED = "ignored"
    ACCEPTED = "accepted"
    NOT_APPLICABLE = "n/a"


@dataclass
class _ConnSnapshot:
    state: TCPState
    rcv_nxt: int
    snd_nxt: int
    delivered: int

    @classmethod
    def of(cls, connection: TCPConnection) -> "_ConnSnapshot":
        return cls(
            state=connection.tcb.state,
            rcv_nxt=connection.tcb.rcv_nxt,
            snd_nxt=connection.tcb.snd_nxt,
            delivered=len(connection.application_data),
        )

    def unchanged(self, connection: TCPConnection) -> bool:
        after = _ConnSnapshot.of(connection)
        return (
            after.state == self.state
            and after.rcv_nxt == self.rcv_nxt
            and after.delivered == self.delivered
        )


class ServerHarness:
    """A controlled server reachable over a clean two-hop path."""

    def __init__(self, profile: StackProfile = LINUX_4_4, seed: int = 99) -> None:
        self.profile = profile
        self.clock = SimClock()
        self.network = Network(clock=self.clock, rng=random.Random(seed))
        self.client = self.network.add_host(Host(CLIENT_IP, "probe-client"))
        self.server = self.network.add_host(Host(SERVER_IP, "probe-server"))
        self.path = Path(CLIENT_IP, SERVER_IP, hop_count=4, base_delay=0.004)
        self.network.add_path(self.path)
        self.server_tcp = TCPHost(
            self.server, self.clock, profile=profile, rng=random.Random(seed + 1)
        )
        self.server_tcp.listen(SERVER_PORT)
        self.rng = random.Random(seed + 2)
        self.client_isn = self.rng.randrange(2**32)
        self.server_synack: Optional[TCPSegment] = None
        self._synacks_seen: List[TCPSegment] = []
        self.client.register_handler(self._capture, prepend=True)
        #: The client's view of its own timestamp clock, for PAWS probes.
        self.client_tsval = 1_000_000

    # ------------------------------------------------------------------
    def _capture(self, packet: IPPacket, now: float) -> bool:
        if packet.is_tcp and packet.tcp.is_synack:
            self._synacks_seen.append(packet.tcp)
            self.server_synack = packet.tcp
        return False

    def _send(self, segment: TCPSegment, **packet_fields: object) -> None:
        packet = IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)
        for name, value in packet_fields.items():
            setattr(packet, name, value)
        self.client.send(packet)
        self.clock.run_for(0.05)

    def _segment(
        self,
        flags: int,
        seq: int,
        ack: int = 0,
        payload: bytes = b"",
        options: Optional[list] = None,
    ) -> TCPSegment:
        return TCPSegment(
            src_port=CLIENT_PORT,
            dst_port=SERVER_PORT,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload,
            options=list(options or []),
        )

    # -- state drivers -----------------------------------------------------
    def drive_to(self, state: TCPState) -> TCPConnection:
        """Bring the server connection to LISTEN/SYN_RECV/ESTABLISHED."""
        if state is TCPState.LISTEN:
            raise ValueError("LISTEN has no per-connection TCB to snapshot")
        options = [MSSOption()]
        if self.profile.use_timestamps:
            options.append(TimestampOption(tsval=self.client_tsval))
        self._send(self._segment(SYN, seq=self.client_isn, options=options))
        connection = self._connection()
        if connection is None or self.server_synack is None:
            raise RuntimeError("server did not enter SYN_RECV")
        if state is TCPState.SYN_RECV:
            return connection
        ack_options = []
        if self.profile.use_timestamps:
            self.client_tsval += 10
            ack_options.append(
                TimestampOption(
                    tsval=self.client_tsval, tsecr=self._server_tsval()
                )
            )
        self._send(
            self._segment(
                ACK,
                seq=seq_add(self.client_isn, 1),
                ack=seq_add(self.server_synack.seq, 1),
                options=ack_options,
            )
        )
        connection = self._connection()
        if connection is None or connection.tcb.state is not TCPState.ESTABLISHED:
            raise RuntimeError("server did not reach ESTABLISHED")
        return connection

    def _server_tsval(self) -> int:
        if self.server_synack is None:
            return 0
        option = self.server_synack.find_option(8)
        return option.tsval if option is not None else 0  # type: ignore[union-attr]

    def _connection(self) -> Optional[TCPConnection]:
        return self.server_tcp.connections.get(
            (SERVER_PORT, CLIENT_IP, CLIENT_PORT)
        )

    # -- probe execution -----------------------------------------------------
    def fire(self, probe_packet: IPPacket) -> None:
        self.client.send(probe_packet)
        self.clock.run_for(0.05)

    def snd_nxt(self) -> int:
        """Client-side next sequence number after the handshake."""
        return seq_add(self.client_isn, 1)

    def rcv_nxt(self) -> int:
        """Client-side next expected server sequence."""
        if self.server_synack is None:
            return 0
        return seq_add(self.server_synack.seq, 1)


#: A probe builder receives the harness and returns the probe packet.
ProbeBuilder = Callable[[ServerHarness], IPPacket]


@dataclass(frozen=True)
class IgnoreProbe:
    """One candidate-insertion-packet test (one Table 3 condition)."""

    name: str
    condition: str
    flags_label: str
    #: TCP states the probe applies to.
    states: Tuple[TCPState, ...]
    build: ProbeBuilder = field(compare=False)
    #: Whether the probe needs timestamps negotiated (PAWS row).
    requires_timestamps: bool = False


def _data(harness: ServerHarness, **kw) -> TCPSegment:
    return harness._segment(
        kw.pop("flags", ACK),
        seq=kw.pop("seq", harness.snd_nxt()),
        ack=kw.pop("ack", harness.rcv_nxt()),
        payload=kw.pop("payload", b"PROBEDATA"),
        options=kw.pop("options", None),
    )


def _packet(harness: ServerHarness, segment: TCPSegment, **fields) -> IPPacket:
    packet = IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)
    for name, value in fields.items():
        setattr(packet, name, value)
    return packet


def _oversize_ip(harness: ServerHarness) -> IPPacket:
    packet = _packet(harness, _data(harness))
    packet.total_length_override = 2000
    return packet


def _short_header(harness: ServerHarness) -> IPPacket:
    segment = _data(harness)
    segment.data_offset_override = 4
    return _packet(harness, segment)


def _bad_checksum(harness: ServerHarness) -> IPPacket:
    segment = _data(harness)
    segment.checksum_override = 0x0001
    return _packet(harness, segment)


def _rstack_bad_ack(harness: ServerHarness) -> IPPacket:
    segment = harness._segment(
        RST | ACK,
        seq=harness.snd_nxt(),
        ack=seq_add(harness.rcv_nxt(), 0x2000000),
    )
    return _packet(harness, segment)


def _ack_bad_ack(harness: ServerHarness) -> IPPacket:
    segment = _data(harness, ack=seq_add(harness.rcv_nxt(), 0x2000000))
    return _packet(harness, segment)


def _md5_option(harness: ServerHarness) -> IPPacket:
    segment = _data(harness, options=[MD5SignatureOption()])
    return _packet(harness, segment)


def _no_flag(harness: ServerHarness) -> IPPacket:
    segment = _data(harness, flags=0, ack=0)
    return _packet(harness, segment)


def _fin_only(harness: ServerHarness) -> IPPacket:
    # FIN without ACK, carrying payload: modern servers drop it on the
    # no-ACK-flag path while the GFW consumes the data (Table 3 row 8).
    segment = harness._segment(FIN, seq=harness.snd_nxt(), payload=b"PROBEDATA")
    return _packet(harness, segment)


def _old_timestamp(harness: ServerHarness) -> IPPacket:
    stale = (harness.client_tsval - 500_000) & 0xFFFFFFFF
    segment = _data(harness, options=[TimestampOption(tsval=stale, tsecr=0)])
    return _packet(harness, segment)


_BOTH = (TCPState.SYN_RECV, TCPState.ESTABLISHED)

#: The nine probes of Table 3, in the paper's row order.
STANDARD_PROBES: Tuple[IgnoreProbe, ...] = (
    IgnoreProbe(
        "oversize-ip-length", "IP total length > actual length", "Any",
        _BOTH, _oversize_ip,
    ),
    IgnoreProbe(
        "short-tcp-header", "TCP Header Length < 20", "Any",
        _BOTH, _short_header,
    ),
    IgnoreProbe(
        "bad-checksum", "TCP checksum incorrect", "Any",
        _BOTH, _bad_checksum,
    ),
    IgnoreProbe(
        "rstack-bad-ack", "Wrong acknowledgement number", "RST+ACK",
        (TCPState.SYN_RECV,), _rstack_bad_ack,
    ),
    IgnoreProbe(
        "ack-bad-ack", "Wrong acknowledgement number", "ACK",
        _BOTH, _ack_bad_ack,
    ),
    IgnoreProbe(
        "unsolicited-md5", "Has unsolicited MD5 Optional Header", "Any",
        _BOTH, _md5_option,
    ),
    IgnoreProbe(
        "no-flag", "TCP packet with no flag", "No flag",
        _BOTH, _no_flag,
    ),
    IgnoreProbe(
        "fin-only", "TCP packet with only FIN flag", "FIN",
        _BOTH, _fin_only,
    ),
    IgnoreProbe(
        "old-timestamp", "Timestamps too old", "ACK",
        _BOTH, _old_timestamp, requires_timestamps=True,
    ),
)


def _syn_in_established(harness: ServerHarness) -> IPPacket:
    segment = harness._segment(SYN, seq=harness.snd_nxt())
    return _packet(harness, segment)


#: Extra probes used by the §5.3 cross-validation but not in Table 3
#: (a SYN in ESTABLISHED is not a *safe* insertion packet because the
#: evolved GFW resynchronizes on it — it is, in fact, a strategy).
EXTENDED_PROBES: Tuple[IgnoreProbe, ...] = STANDARD_PROBES + (
    IgnoreProbe(
        "syn-in-established", "SYN while connection established", "SYN",
        (TCPState.ESTABLISHED,), _syn_in_established,
    ),
)


@dataclass
class IgnorePathResult:
    probe: IgnoreProbe
    state: TCPState
    verdict: IgnoreVerdict
    drop_reasons: List[str] = field(default_factory=list)


def probe_server(
    probe: IgnoreProbe,
    state: TCPState,
    profile: StackProfile = LINUX_4_4,
    seed: int = 99,
) -> IgnorePathResult:
    """Fire one probe at a server in ``state`` and classify the result."""
    if probe.requires_timestamps and not profile.use_timestamps:
        return IgnorePathResult(probe, state, IgnoreVerdict.NOT_APPLICABLE)
    harness = ServerHarness(profile=profile, seed=seed)
    connection = harness.drive_to(state)
    before = _ConnSnapshot.of(connection)
    drops_before = len(connection.drop_log)
    harness.fire(probe.build(harness))
    if before.unchanged(connection):
        verdict = IgnoreVerdict.IGNORED
    else:
        verdict = IgnoreVerdict.ACCEPTED
    reasons = [reason.value for reason, _ in connection.drop_log[drops_before:]]
    return IgnorePathResult(probe, state, verdict, reasons)


def run_ignore_path_analysis(
    profile: StackProfile = LINUX_4_4,
    probes: Tuple[IgnoreProbe, ...] = STANDARD_PROBES,
    seed: int = 99,
) -> List[IgnorePathResult]:
    """The full server-side enumeration for one stack profile."""
    results: List[IgnorePathResult] = []
    for probe in probes:
        for state in probe.states:
            results.append(probe_server(probe, state, profile, seed))
    return results


def ignored_probes(
    profile: StackProfile = LINUX_4_4, seed: int = 99
) -> Dict[str, List[TCPState]]:
    """Map of probe name -> states in which the server ignores it."""
    summary: Dict[str, List[TCPState]] = {}
    for result in run_ignore_path_analysis(profile, seed=seed):
        if result.verdict is IgnoreVerdict.IGNORED:
            summary.setdefault(result.probe.name, []).append(result.state)
    return summary
