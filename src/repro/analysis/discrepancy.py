"""Discrepancy synthesis: Table 3, version cross-validation, Table 5.

Combines the two halves of the §5.3 analysis — server-ignores
(:mod:`repro.analysis.ignore_paths`) and GFW-accepts
(:mod:`repro.analysis.probe`) — into the confirmed-insertion-packet
rows of Table 3, then:

- :func:`cross_validate_stacks` reruns the server half on every
  modelled kernel and reports the divergences §5.3 lists (3.14's
  SYN-in-ESTABLISHED silence, 2.6.34/2.4.37 accepting no-ACK-flag data,
  2.4.37 accepting unsolicited MD5);
- :func:`cross_validate_middleboxes` pushes each candidate through every
  Table 2 provider profile and reports which survive;
- :func:`derive_table5` reduces all of the above to the preferred
  construction matrix (Table 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netstack.packet import IPPacket
from repro.netsim.network import Network, Path
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.gfw.flow import GFWFlowState
from repro.gfw.models import GFWConfig
from repro.middlebox.profiles import (
    MiddleboxProfile,
    PROFILE_ALIYUN,
    PROFILE_QCLOUD,
    PROFILE_UNICOM_SJZ,
    PROFILE_UNICOM_TJ,
)
from repro.tcp.profiles import ALL_PROFILES, LINUX_4_4, StackProfile
from repro.tcp.tcb import TCPState
from repro.analysis.ignore_paths import (
    CLIENT_IP,
    SERVER_IP,
    EXTENDED_PROBES,
    IgnoreProbe,
    IgnoreVerdict,
    STANDARD_PROBES,
    probe_server,
)
from repro.analysis.probe import gfw_accepts_probe


@dataclass(frozen=True)
class DiscrepancyRow:
    """One confirmed insertion-packet condition (a Table 3 row)."""

    tcp_state: str
    gfw_state: str
    flags: str
    condition: str

    def as_tuple(self) -> Tuple[str, str, str, str]:
        return (self.tcp_state, self.gfw_state, self.flags, self.condition)


def generate_table3(
    server_profile: StackProfile = LINUX_4_4,
    gfw_config: Optional[GFWConfig] = None,
    probes: Sequence[IgnoreProbe] = STANDARD_PROBES,
    seed: int = 17,
) -> List[DiscrepancyRow]:
    """Run both analysis halves and emit the confirmed discrepancies."""
    rows: List[DiscrepancyRow] = []
    for probe in probes:
        ignored_states = []
        for state in probe.states:
            result = probe_server(probe, state, server_profile, seed=seed)
            if result.verdict is IgnoreVerdict.IGNORED:
                ignored_states.append(state)
        if not ignored_states:
            continue
        gfw_result = gfw_accepts_probe(probe, config=gfw_config, seed=seed)
        if not gfw_result.accepted:
            continue
        rows.append(
            DiscrepancyRow(
                tcp_state=_states_label(ignored_states, probe),
                gfw_state=_gfw_state_label(gfw_result.gfw_state_after),
                flags=probe.flags_label,
                condition=probe.condition,
            )
        )
    return rows


def _states_label(states: List[TCPState], probe: IgnoreProbe) -> str:
    if probe.flags_label == "Any" and len(states) == 2 and probe.name in (
        "oversize-ip-length", "short-tcp-header", "bad-checksum",
    ):
        return "Any"
    return "/".join(state.value for state in states)


def _gfw_state_label(after: str) -> str:
    if after == "TCB deleted":
        return "LISTEN (terminated) / RESYNC"
    if after == GFWFlowState.RESYNC.value:
        return "ESTABLISHED/RESYNC"
    return "ESTABLISHED/RESYNC"


# ---------------------------------------------------------------------------
# Cross-validation with other TCP stacks (§5.3)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StackDivergence:
    profile: str
    probe: str
    state: str
    reference_verdict: str
    this_verdict: str


def cross_validate_stacks(
    reference: StackProfile = LINUX_4_4,
    profiles: Sequence[StackProfile] = ALL_PROFILES,
    probes: Sequence[IgnoreProbe] = EXTENDED_PROBES,
    seed: int = 17,
) -> List[StackDivergence]:
    """Where do other kernels diverge from the reference's ignore paths?"""
    reference_verdicts: Dict[Tuple[str, TCPState], IgnoreVerdict] = {}
    for probe in probes:
        for state in probe.states:
            result = probe_server(probe, state, reference, seed=seed)
            reference_verdicts[(probe.name, state)] = result.verdict
    divergences: List[StackDivergence] = []
    for profile in profiles:
        if profile.name == reference.name:
            continue
        for probe in probes:
            for state in probe.states:
                result = probe_server(probe, state, profile, seed=seed)
                reference_verdict = reference_verdicts[(probe.name, state)]
                if result.verdict is IgnoreVerdict.NOT_APPLICABLE:
                    continue
                if result.verdict is not reference_verdict:
                    divergences.append(
                        StackDivergence(
                            profile=profile.name,
                            probe=probe.name,
                            state=state.value,
                            reference_verdict=reference_verdict.value,
                            this_verdict=result.verdict.value,
                        )
                    )
    return divergences


# ---------------------------------------------------------------------------
# Cross-validation with middleboxes (§5.3) and Table 5
# ---------------------------------------------------------------------------
_PROVIDERS = (
    PROFILE_ALIYUN, PROFILE_QCLOUD, PROFILE_UNICOM_SJZ, PROFILE_UNICOM_TJ
)


def _survives_provider(
    packet_factory, provider: MiddleboxProfile, repeats: int = 6, seed: int = 5
) -> bool:
    """Would packets of this shape reliably traverse the provider's boxes?

    "Reliably" means every one of ``repeats`` copies survived — a
    sometimes-dropped vehicle is not a dependable insertion carrier.
    """
    clock = SimClock()
    network = Network(clock=clock, rng=random.Random(seed))
    client = network.add_host(Host(CLIENT_IP, "mb-client"))
    server = network.add_host(Host(SERVER_IP, "mb-server"))
    path = Path(CLIENT_IP, SERVER_IP, hop_count=6, base_delay=0.006)
    network.add_path(path)
    for box in provider.build_boxes(hop=2, rng=random.Random(seed + 1)):
        path.add_element(box)
    arrived: List[IPPacket] = []

    def sniff(packet: IPPacket, now: float) -> bool:
        arrived.append(packet)
        return False

    server.register_handler(sniff, prepend=True)
    for index in range(repeats):
        client.send(packet_factory(index))
        clock.run_for(0.1)
    return len(arrived) == repeats


def cross_validate_middleboxes(
    probes: Sequence[IgnoreProbe] = STANDARD_PROBES, seed: int = 5
) -> Dict[str, Dict[str, bool]]:
    """probe name -> provider name -> survives reliably."""
    from repro.analysis.ignore_paths import ServerHarness

    survival: Dict[str, Dict[str, bool]] = {}
    for probe in probes:
        harness = ServerHarness(seed=seed)
        harness.drive_to(TCPState.ESTABLISHED)

        def factory(index: int, probe=probe, harness=harness) -> IPPacket:
            return probe.build(harness)

        survival[probe.name] = {
            provider.name: _survives_provider(factory, provider, seed=seed)
            for provider in _PROVIDERS
        }
    return survival


def derive_table5(seed: int = 5) -> Dict[str, List[str]]:
    """Reduce the analysis to Table 5's preferred-vehicle matrix.

    The TTL vehicle is always available (it needs no header anomaly a
    middlebox could sanitize); the other vehicles qualify for a packet
    type when the server ignores them in the states that matter, the
    GFW accepts them, middleboxes pass them, and — for control packets —
    they do not reset an ESTABLISHED server (§5.3: "even if the RST/ACK
    has a wrong ACK number or old timestamp, it will still be able to
    reset the connection").
    """
    survival = cross_validate_middleboxes(seed=seed)
    md5_safe = all(survival["unsolicited-md5"].values())
    preferences: Dict[str, List[str]] = {
        "SYN": ["ttl"],
        "RST": ["ttl"] + (["md5"] if md5_safe else []),
        "Data": ["ttl"]
        + (["md5"] if md5_safe else [])
        + ["bad-ack", "old-timestamp"],
    }
    return preferences
