"""Ensafi-style inconsistency characterization across simulated routes.

**Extension, not paper.**  Ensafi et al. (PAPERS.md) characterized the
GFW by probing it from many vantage points over many days and reporting
*inconsistencies*: routes that disagree about the same stimulus, diurnal
reset-rate variation, and blacklist windows that drift.  This module
reproduces that study shape against the simulated heterogeneous censor
(:mod:`repro.gfw.heterogeneity`): a seeded sweep over lab vantage points
× simulated hours-of-day × strategies, reduced to

- a per-route **disagreement matrix** (strategy × vantage verdicts),
- a **diurnal curve** of reset suppression vs hour, and
- a **blacklist-churn timeline** (adds and TTL expirations per hour),

with every cell carried as a :class:`VerdictDistribution` — n-trial
outcome counts plus a Wilson score interval — rather than a bare label.

Execution notes: per-cell seeds are fixed before fan-out (the same crc32
salt scheme as the conformance matrix), each trial is simulated directly
(never served from the replay tier), and device observables are
harvested from the finished scenario before the pool can recycle it —
so the report is byte-identical for any ``--shards``/worker split, which
``tests/test_heterogeneity.py`` pins.

Heavy imports (runner, conformance) stay function-local: the module
itself must be importable from pickled pool workers and from
:mod:`repro.conformance.matrix` without cycles.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gfw.heterogeneity import (
    HETEROGENEOUS_VARIANT,
    active_ensemble,
)

__all__ = [
    "DEFAULT_HOURS",
    "DEFAULT_STRATEGIES",
    "InconsistencyCell",
    "InconsistencyReport",
    "VerdictDistribution",
    "lab_vantages",
    "run_inconsistency",
    "wilson_interval",
]

#: Default sweep axes: the four quarter-day hours and the strategies
#: whose verdicts *differ between model generations* (old vs evolved vs
#: mixed), so a heterogeneous route assignment is guaranteed to surface
#: as disagreement — plus the no-strategy baseline, whose diurnal
#: success wobble is the purest Ensafi failure-to-inject signal.
DEFAULT_HOURS: Tuple[float, ...] = (0.0, 6.0, 12.0, 18.0)
DEFAULT_STRATEGIES: Tuple[str, ...] = (
    "none",
    "tcb-teardown-rst/ttl",
    "resync-desync",
    "tcb-reversal",
    "improved-tcb-teardown",
)
DEFAULT_Z = 1.96  # two-sided 95 %


def wilson_interval(
    successes: int, trials: int, z: float = DEFAULT_Z
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because conformance cells
    run single-digit repeats, where Wald intervals collapse to zero
    width at 0/n and n/n.  ``n=0`` returns the vacuous ``(0, 1)``.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class VerdictDistribution:
    """Outcome counts of n trials — the distribution-valued verdict.

    The scalar verdict (``evades``/``blocked``/``broken``/``mixed``)
    stays available as the point-estimate view via
    :func:`repro.conformance.matrix.classify_counts`; this type carries
    what that reduction throws away: the counts themselves and a
    confidence interval on the success proportion.  Merging is integer
    addition, hence associative and commutative — shard-order-proof.
    """

    success: int = 0
    failure1: int = 0
    failure2: int = 0

    @property
    def trials(self) -> int:
        return self.success + self.failure1 + self.failure2

    @property
    def verdict(self) -> str:
        from repro.conformance.matrix import classify_counts

        return classify_counts(self.success, self.failure1, self.failure2)

    def wilson(self, z: float = DEFAULT_Z) -> Tuple[float, float]:
        """Confidence bounds on the *success* proportion."""
        return wilson_interval(self.success, self.trials, z=z)

    def merge(self, other: "VerdictDistribution") -> "VerdictDistribution":
        return VerdictDistribution(
            self.success + other.success,
            self.failure1 + other.failure1,
            self.failure2 + other.failure2,
        )

    __add__ = merge

    def as_payload(self) -> Dict:
        low, high = self.wilson()
        return {
            "success": self.success,
            "failure1": self.failure1,
            "failure2": self.failure2,
            "trials": self.trials,
            "verdict": self.verdict,
            "wilson_low": round(low, 6),
            "wilson_high": round(high, 6),
        }


def lab_vantages(count: int) -> List:
    """``count`` synthetic in-China vantage points on a private range.

    Middlebox-transparent and Tor-clean on purpose: the sweep isolates
    *route* heterogeneity, so Table 2 client-side equipment must not
    contaminate the disagreement matrix.  Names and IPs are stable, so
    the crc32 route assignment is too.
    """
    from repro.experiments.vantage import VantagePoint

    return [
        VantagePoint(
            name=f"route-vp-{index:02d}",
            city="Lab",
            isp="Lab",
            provider_profile="transparent",
            ip=f"10.77.0.{index + 1}",
            inside_china=True,
            tor_filtered=False,
        )
        for index in range(count)
    ]


@dataclass
class InconsistencyCell:
    """One (vantage, hour, strategy) cell of the sweep."""

    vantage: str
    hour: float
    strategy_id: str
    member_variant: str
    distribution: VerdictDistribution = field(default_factory=VerdictDistribution)
    detections: int = 0
    resets_injected: int = 0
    resets_suppressed: int = 0
    blacklist_adds: int = 0
    blacklist_expirations: int = 0

    def as_payload(self) -> Dict:
        payload = self.distribution.as_payload()
        payload.update(
            vantage=self.vantage,
            hour=self.hour,
            strategy=self.strategy_id,
            member_variant=self.member_variant,
            detections=self.detections,
            resets_injected=self.resets_injected,
            resets_suppressed=self.resets_suppressed,
            blacklist_adds=self.blacklist_adds,
            blacklist_expirations=self.blacklist_expirations,
        )
        return payload


def _cell_salt(vantage: str, hour: float, strategy_id: str) -> int:
    token = f"{vantage}|{hour:g}|{strategy_id}"
    return zlib.crc32(token.encode("utf-8")) & 0xFFFFFF


def _inconsistency_cell_worker(task: Tuple) -> InconsistencyCell:
    """Process-pool work unit: one cell's repeats, observables included.

    Observables are read from each finished scenario *before* the next
    trial can lease it back out of the pool; devices are rebuilt per
    trial, so the counters are per-trial by construction.
    """
    from repro.experiments.calibration import CLEAN_ROOM
    from repro.experiments.runner import Outcome, _simulate_http_trial

    vantage, website, hour, strategy_id, repeats, seed = task
    ensemble = active_ensemble()
    cell = InconsistencyCell(
        vantage=vantage.name,
        hour=hour,
        strategy_id=strategy_id,
        member_variant=ensemble.member_for(vantage.name, website.name),
    )
    calibration = CLEAN_ROOM.variant(sim_hour=float(hour))
    salt = _cell_salt(vantage.name, hour, strategy_id)
    counts = {Outcome.SUCCESS: 0, Outcome.FAILURE1: 0, Outcome.FAILURE2: 0}
    for repeat in range(repeats):
        record, scenario = _simulate_http_trial(
            vantage,
            website,
            strategy_id,
            calibration,
            seed=(seed * 1_000_003 + repeat) ^ salt,
            keyword=True,
            gfw_variant=HETEROGENEOUS_VARIANT,
        )
        counts[record.outcome] += 1
        for device in scenario.gfw_devices:
            # Materialize lazy TTL expiries at the trial's end time —
            # pairs whose connection died never re-read the blacklist.
            device.blacklist.sweep(scenario.clock.now)
            cell.detections += len(device.detections)
            cell.resets_injected += device.resets_injected
            cell.resets_suppressed += getattr(device, "resets_suppressed", 0)
            cell.blacklist_adds += device.blacklist.total_blacklistings
            cell.blacklist_expirations += device.blacklist.total_expirations
    cell.distribution = VerdictDistribution(
        counts[Outcome.SUCCESS],
        counts[Outcome.FAILURE1],
        counts[Outcome.FAILURE2],
    )
    return cell


@dataclass
class InconsistencyReport:
    """The reduced sweep: cells plus the three Ensafi views."""

    vantage_names: List[str]
    hours: List[float]
    strategies: List[str]
    repeats: int
    seed: int
    target: str
    cells: List[InconsistencyCell]
    routes: Dict[str, Dict]

    def _merged(self) -> Dict[Tuple[str, str], VerdictDistribution]:
        """(strategy, vantage) distributions merged across hours."""
        merged: Dict[Tuple[str, str], VerdictDistribution] = {}
        for cell in self.cells:
            key = (cell.strategy_id, cell.vantage)
            merged[key] = merged.get(key, VerdictDistribution()).merge(
                cell.distribution
            )
        return merged

    def disagreement_matrix(self) -> Dict[str, Dict[str, str]]:
        """strategy → vantage → point verdict (hours pooled)."""
        merged = self._merged()
        return {
            strategy: {
                vantage: merged[(strategy, vantage)].verdict
                for vantage in self.vantage_names
            }
            for strategy in self.strategies
        }

    def disagreeing_strategies(self) -> List[str]:
        """Strategies on which at least two routes disagree."""
        matrix = self.disagreement_matrix()
        return [
            strategy
            for strategy in self.strategies
            if len(set(matrix[strategy].values())) > 1
        ]

    def diurnal_curve(self) -> List[Dict]:
        """Per-hour reset enforcement vs suppression, all cells pooled."""
        curve = []
        for hour in self.hours:
            slice_cells = [c for c in self.cells if c.hour == hour]
            detections = sum(c.detections for c in slice_cells)
            suppressed = sum(c.resets_suppressed for c in slice_cells)
            curve.append(
                {
                    "hour": hour,
                    "detections": detections,
                    "resets_injected": sum(
                        c.resets_injected for c in slice_cells
                    ),
                    "resets_suppressed": suppressed,
                    "suppression_rate": round(
                        suppressed / detections, 6
                    )
                    if detections
                    else 0.0,
                }
            )
        return curve

    def churn_timeline(self) -> List[Dict]:
        """Per-hour blacklist adds and TTL expirations."""
        timeline = []
        for hour in self.hours:
            slice_cells = [c for c in self.cells if c.hour == hour]
            timeline.append(
                {
                    "hour": hour,
                    "blacklist_adds": sum(
                        c.blacklist_adds for c in slice_cells
                    ),
                    "ttl_expirations": sum(
                        c.blacklist_expirations for c in slice_cells
                    ),
                }
            )
        return timeline

    def as_payload(self) -> Dict:
        return {
            "grid": {
                "vantages": self.vantage_names,
                "hours": self.hours,
                "strategies": self.strategies,
                "repeats": self.repeats,
                "seed": self.seed,
                "target": self.target,
                "gfw_variant": HETEROGENEOUS_VARIANT,
            },
            "routes": self.routes,
            "cells": [cell.as_payload() for cell in self.cells],
            "disagreement_matrix": self.disagreement_matrix(),
            "disagreeing_strategies": self.disagreeing_strategies(),
            "diurnal_curve": self.diurnal_curve(),
            "blacklist_churn": self.churn_timeline(),
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for any shard split."""
        return json.dumps(self.as_payload(), indent=2, sort_keys=True)


def run_inconsistency(
    vantages: int = 8,
    hours: Sequence[float] = DEFAULT_HOURS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    repeats: int = 6,
    seed: int = 2017,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> InconsistencyReport:
    """Run the vantage × hour × strategy sweep against the heterogeneous
    censor and reduce it to an :class:`InconsistencyReport`."""
    from repro.conformance.matrix import conformance_site
    from repro.experiments.parallel import map_trials, run_sharded

    points = lab_vantages(vantages)
    website = conformance_site()
    hour_list = [float(h) for h in hours]
    strategy_list = list(strategies)
    tasks = [
        (vantage, website, hour, strategy_id, repeats, seed)
        for vantage in points
        for hour in hour_list
        for strategy_id in strategy_list
    ]
    if shards is not None and shards > 1:
        cells = run_sharded(
            _inconsistency_cell_worker,
            tasks,
            shards=shards,
            workers=workers,
            trials_per_task=repeats,
        )
    else:
        cells = map_trials(
            _inconsistency_cell_worker,
            tasks,
            workers=workers,
            trials_per_task=repeats,
        )
    ensemble = active_ensemble()
    routes: Dict[str, Dict] = {}
    for vantage in points:
        member, profile = ensemble.resolve(vantage.name, website.name)
        routes[vantage.name] = {
            "member_variant": member,
            "temporal": None
            if profile is None
            else {
                "peak_hour": round(profile.peak_hour, 4),
                "base_suppression": round(profile.base_suppression, 6),
                "amplitude": round(profile.amplitude, 6),
                "ttl_factor": round(profile.ttl_factor, 6),
            },
        }
    return InconsistencyReport(
        vantage_names=[v.name for v in points],
        hours=hour_list,
        strategies=strategy_list,
        repeats=repeats,
        seed=seed,
        target=website.name,
        cells=cells,
        routes=routes,
    )
