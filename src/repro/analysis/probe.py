"""GFW-acceptance probing (§5.3, censor half of Table 3).

The server-side enumeration yields packets the server *ignores*; a
candidate only becomes an insertion packet if the GFW still *accepts*
it — "the GFW updates its TCB according to the information in the
packet".  :class:`GFWHarness` builds a live device on a tap, replays the
connection prefix that establishes the target GFW state, fires the
candidate carrying a junk payload at the expected sequence position,
and reads acceptance from the device's own flow state (did
``client_next_seq`` advance past the junk? did the TCB die?).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.netstack.packet import ACK, IPPacket, SYN, TCPSegment, seq_add
from repro.netsim.network import Network, Path
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.gfw.device import GFWDevice
from repro.gfw.flow import GFWFlowState
from repro.gfw.models import GFWConfig, evolved_config
from repro.analysis.ignore_paths import (
    CLIENT_IP,
    CLIENT_PORT,
    SERVER_IP,
    SERVER_PORT,
    IgnoreProbe,
)


class GFWHarness:
    """A GFW device on a clean path, with scripted endpoints."""

    def __init__(
        self, config: Optional[GFWConfig] = None, seed: int = 7
    ) -> None:
        self.clock = SimClock()
        self.network = Network(clock=self.clock, rng=random.Random(seed))
        self.client = self.network.add_host(Host(CLIENT_IP, "gfw-probe-client"))
        self.server = self.network.add_host(Host(SERVER_IP, "gfw-probe-server"))
        self.path = Path(CLIENT_IP, SERVER_IP, hop_count=6, base_delay=0.006)
        self.network.add_path(self.path)
        config = config or evolved_config()
        config.miss_probability = 0.0
        self.device = GFWDevice(
            "gfw-probe", hop=3, config=config, clock=self.clock,
            rng=random.Random(seed + 1),
        )
        self.device.cluster.miss_probability = 0.0
        self.path.add_element(self.device)
        self.rng = random.Random(seed + 2)
        self.client_isn = self.rng.randrange(2**32)
        self.server_isn = self.rng.randrange(2**32)

    # -- scripted packets ---------------------------------------------------
    def _client_segment(self, flags: int, seq: int, ack: int = 0,
                        payload: bytes = b"") -> TCPSegment:
        return TCPSegment(
            src_port=CLIENT_PORT, dst_port=SERVER_PORT,
            seq=seq, ack=ack, flags=flags, payload=payload,
        )

    def send_from_client(self, segment: TCPSegment) -> None:
        self.client.send(IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment))
        self.clock.run_for(0.05)

    def send_from_server(self, segment: TCPSegment) -> None:
        self.server.send(IPPacket(src=SERVER_IP, dst=CLIENT_IP, payload=segment))
        self.clock.run_for(0.05)

    def establish(self) -> None:
        """Replay a clean 3-way handshake past the device."""
        self.send_from_client(self._client_segment(SYN, seq=self.client_isn))
        synack = TCPSegment(
            src_port=SERVER_PORT, dst_port=CLIENT_PORT,
            seq=self.server_isn, ack=seq_add(self.client_isn, 1),
            flags=SYN | ACK,
        )
        self.send_from_server(synack)
        self.send_from_client(
            self._client_segment(
                ACK, seq=seq_add(self.client_isn, 1),
                ack=seq_add(self.server_isn, 1),
            )
        )

    def flow(self):
        return self.device.flow_for(
            CLIENT_IP, CLIENT_PORT, SERVER_IP, SERVER_PORT
        )

    def client_snd_nxt(self) -> int:
        return seq_add(self.client_isn, 1)

    def client_rcv_nxt(self) -> int:
        return seq_add(self.server_isn, 1)


@dataclass
class GFWProbeResult:
    probe_name: str
    accepted: bool
    gfw_state_after: str


def gfw_accepts_probe(
    probe: IgnoreProbe,
    config: Optional[GFWConfig] = None,
    seed: int = 7,
) -> GFWProbeResult:
    """Does the GFW process this candidate insertion packet?

    A *data* candidate counts as accepted when the device's expected
    client sequence number advances past the junk payload.  A *control*
    candidate (RST/FIN flavors) counts as accepted when the device's TCB
    is deleted or moved to the resynchronization state.
    """
    harness = GFWHarness(config=config, seed=seed)
    harness.establish()
    flow_before = harness.flow()
    assert flow_before is not None, "handshake did not create a GFW flow"
    seq_before = flow_before.client_next_seq
    state_before = flow_before.state

    # Rebuild the probe packet against this harness's sequence numbers.
    packet = _adapt_probe(probe, harness)
    harness.client.send(packet)
    harness.clock.run_for(0.05)

    flow_after = harness.flow()
    if flow_after is None:
        return GFWProbeResult(probe.name, True, "TCB deleted")
    if flow_after.state is GFWFlowState.RESYNC and state_before is not GFWFlowState.RESYNC:
        return GFWProbeResult(probe.name, True, "RESYNC")
    advanced = flow_after.client_next_seq != seq_before
    return GFWProbeResult(
        probe.name, advanced, flow_after.state.value
    )


def _adapt_probe(probe: IgnoreProbe, harness: GFWHarness) -> IPPacket:
    """Build the probe packet with this harness's connection numbers.

    The probe builders were written against :class:`ServerHarness`'s
    interface; :class:`GFWHarness` quacks the same where needed.
    """

    class _Adapter:
        client_isn = harness.client_isn
        client_tsval = 1_000_000

        @staticmethod
        def _segment(flags, seq, ack=0, payload=b"", options=None):
            return TCPSegment(
                src_port=CLIENT_PORT, dst_port=SERVER_PORT,
                seq=seq, ack=ack, flags=flags, payload=payload,
                options=list(options or []),
            )

        @staticmethod
        def snd_nxt():
            return harness.client_snd_nxt()

        @staticmethod
        def rcv_nxt():
            return harness.client_rcv_nxt()

    return probe.build(_Adapter())  # type: ignore[arg-type]
