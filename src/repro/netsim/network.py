"""The network: paths, hop-by-hop traversal, loss, delay, and injection.

A :class:`Path` joins exactly two endpoints ("client" and "server" ends,
matching the paper's threat model) and carries an ordered set of
:class:`~repro.netsim.path.PathElement` objects at integer hop positions.
Packet traversal is event-driven: each element processes the packet at
the sim time it would physically arrive there, so a GFW reset injected at
hop 8 genuinely races the original packet to the server at hop 14.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.netstack.packet import IPPacket
from repro.netsim.node import Endpoint
from repro.netsim.path import (
    Direction,
    InlineBox,
    PathElement,
    ProcessResult,
    Tap,
    Verdict,
)
from repro.netsim.simclock import SimClock
from repro.netsim.trace import TraceRecorder


class Path:
    """A bidirectional multi-hop path between a client and a server.

    ``hop_count`` is the number of routers between the endpoints; elements
    sit at hops ``1 .. hop_count - 1``.  ``base_delay`` is the one-way
    propagation delay, divided evenly across hops.  ``loss_rate`` is the
    probability that a traversal loses the packet at a uniformly chosen
    hop — losing an insertion packet *before* the GFW hop is one of the
    paper's "Failure 2" causes (§3.4), and the hop-position draw models
    exactly that.
    """

    def __init__(
        self,
        client_ip: str,
        server_ip: str,
        hop_count: int = 14,
        base_delay: float = 0.04,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if hop_count < 2:
            raise ValueError("a path needs at least two hops")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        self.client_ip = client_ip
        self.server_ip = server_ip
        self.hop_count = hop_count
        self.base_delay = base_delay
        self.loss_rate = loss_rate
        #: Per-segment delay jitter as a fraction of the nominal delay.
        #: Nonzero jitter lets closely spaced packets *reorder* in
        #: flight — endpoint reassembly must cope (and does).
        self.jitter = jitter
        self.name = name or f"{client_ip}<->{server_ip}"
        self.elements: List[PathElement] = []
        self.network: Optional["Network"] = None

    # -- construction -------------------------------------------------------
    def add_element(self, element: PathElement) -> PathElement:
        """Attach an in-path box or on-path tap at its ``hop`` position."""
        if not 0 < element.hop < self.hop_count:
            raise ValueError(
                f"element hop {element.hop} outside path (1..{self.hop_count - 1})"
            )
        element.path = self
        self.elements.append(element)
        self.elements.sort(key=lambda item: item.hop)
        return element

    def endpoints(self) -> Tuple[str, str]:
        return (self.client_ip, self.server_ip)

    def direction_from(self, sender_ip: str) -> Direction:
        if sender_ip == self.client_ip:
            return Direction.CLIENT_TO_SERVER
        if sender_ip == self.server_ip:
            return Direction.SERVER_TO_CLIENT
        raise ValueError(f"{sender_ip} is not an endpoint of {self.name}")

    def reset_elements(self) -> None:
        """Clear per-connection state on every element (between trials)."""
        for element in self.elements:
            element.reset_state()

    # -- route dynamics -------------------------------------------------------
    def drift_server_side(self, delta: int) -> None:
        """Lengthen (or shorten) the path beyond the last element.

        Models route changes between the GFW and the server: the client's
        previously measured hop count goes stale, so TTL-limited insertion
        packets may now reach the server (Failure 1) or, with negative
        drift, fall short of the GFW (Failure 2).
        """
        new_count = self.hop_count + delta
        last_element_hop = max((element.hop for element in self.elements), default=0)
        if new_count <= last_element_hop + 0:
            raise ValueError("drift would place the server before an element")
        self.hop_count = new_count

    def drift_client_side(self, delta: int) -> None:
        """Lengthen (or shorten) the path before the first element.

        All element hop positions shift by ``delta``; models route changes
        between the client and the GFW.
        """
        first_element_hop = min(
            (element.hop for element in self.elements), default=self.hop_count
        )
        if first_element_hop + delta < 1:
            raise ValueError("drift would place an element before the client")
        for element in self.elements:
            element.hop += delta
        self.hop_count += delta

    # -- traversal --------------------------------------------------------------
    def per_hop_delay(self) -> float:
        return self.base_delay / self.hop_count

    def sender_hop(self, direction: Direction) -> int:
        """Hop coordinate (client-based) of the sender for ``direction``."""
        return 0 if direction is Direction.CLIENT_TO_SERVER else self.hop_count

    def destination_hop(self, direction: Direction) -> int:
        return self.hop_count if direction is Direction.CLIENT_TO_SERVER else 0

    def elements_ahead(self, origin_hop: int, direction: Direction) -> List[PathElement]:
        """Elements the packet will meet, in travel order."""
        if direction is Direction.CLIENT_TO_SERVER:
            ahead = [e for e in self.elements if e.hop > origin_hop]
            ahead.sort(key=lambda item: item.hop)
        else:
            ahead = [e for e in self.elements if e.hop < origin_hop]
            ahead.sort(key=lambda item: item.hop, reverse=True)
        return ahead

    def hop_distance(self, origin_hop: int, target_hop: int) -> int:
        return abs(target_hop - origin_hop)

    def inject(self, tap: Tap, packet: IPPacket, direction: Direction) -> None:
        """Entry point for on-path taps injecting forged packets."""
        if self.network is None:
            raise RuntimeError(f"path {self.name} is not attached to a network")
        packet.meta.setdefault("injected_by", tap.name)
        self.network.launch(self, packet, direction, origin_hop=tap.hop, origin=tap.name)


class Network:
    """Holds hosts and paths and runs packet traversal on the event clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.rng = rng if rng is not None else random.Random(0)
        # Note: "trace or default" would be wrong — an empty recorder is
        # falsy through its __len__.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.hosts: Dict[str, Endpoint] = {}
        self._paths: Dict[frozenset, Path] = {}
        #: Packets that arrived for an IP with no registered host.
        self.undeliverable = 0

    # -- topology -----------------------------------------------------------
    def add_host(self, host: Endpoint) -> Endpoint:
        if host.ip in self.hosts:
            raise ValueError(f"duplicate host IP {host.ip}")
        self.hosts[host.ip] = host
        host.network = self
        return host

    def add_path(self, path: Path) -> Path:
        key = frozenset(path.endpoints())
        if key in self._paths:
            raise ValueError(f"duplicate path between {path.endpoints()}")
        self._paths[key] = path
        path.network = self
        return path

    def path_between(self, ip_a: str, ip_b: str) -> Path:
        try:
            return self._paths[frozenset((ip_a, ip_b))]
        except KeyError:
            raise KeyError(f"no path between {ip_a} and {ip_b}") from None

    def paths(self) -> List[Path]:
        return list(self._paths.values())

    # -- sending ------------------------------------------------------------
    def send(self, sender: Endpoint, packet: IPPacket) -> None:
        """Called by an endpoint to transmit toward ``packet.dst``."""
        try:
            path = self.path_between(sender.ip, packet.dst)
        except KeyError:
            self.trace.record(
                self.clock.now, sender.name, "drop", packet, note="no route"
            )
            self.undeliverable += 1
            return
        direction = path.direction_from(sender.ip)
        self.trace.record(
            self.clock.now, sender.name, "send", packet, direction.value
        )
        self.launch(
            path, packet, direction, origin_hop=path.sender_hop(direction),
            origin=sender.name,
        )

    def launch(
        self,
        path: Path,
        packet: IPPacket,
        direction: Direction,
        origin_hop: int,
        origin: str,
    ) -> None:
        """Start event-driven traversal of ``packet`` along ``path``.

        Loss is decided up front by drawing a drop hop; elements before the
        drop hop still see the packet (so the GFW may act on a packet the
        server never receives — a real and exploited asymmetry).
        """
        drop_hop: Optional[int] = None
        if path.loss_rate > 0 and self.rng.random() < path.loss_rate:
            destination_hop = path.destination_hop(direction)
            low, high = sorted((origin_hop, destination_hop))
            drop_hop = self.rng.randint(low + 1, high)
            if direction is Direction.SERVER_TO_CLIENT:
                # express as the hop (client coordinate) where it dies
                drop_hop = self.rng.randint(low, high - 1)
        plan = path.elements_ahead(origin_hop, direction)
        self._advance(path, packet, direction, origin_hop, plan, 0, drop_hop, origin)

    # -- traversal engine -----------------------------------------------------
    def _advance(
        self,
        path: Path,
        packet: IPPacket,
        direction: Direction,
        current_hop: int,
        plan: List[PathElement],
        plan_index: int,
        drop_hop: Optional[int],
        origin: str,
    ) -> None:
        """Schedule the next step (element visit or final delivery)."""
        if plan_index < len(plan):
            element = plan[plan_index]
            target_hop = element.hop
        else:
            element = None
            target_hop = path.destination_hop(direction)
        distance = path.hop_distance(current_hop, target_hop)
        delay = path.per_hop_delay() * max(distance, 0)
        if path.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.rng.uniform(-path.jitter, path.jitter)

        def arrive() -> None:
            # TTL accounting: packet.ttl was the value at current_hop.
            remaining_ttl = packet.ttl - distance
            died_of_ttl = remaining_ttl <= 0
            if died_of_ttl:
                expiry_hop = (
                    current_hop + packet.ttl
                    if direction is Direction.CLIENT_TO_SERVER
                    else current_hop - packet.ttl
                )
            else:
                expiry_hop = None
            if drop_hop is not None and self._hop_reached(
                current_hop, target_hop, drop_hop, direction
            ):
                if not died_of_ttl or self._loss_before_ttl(
                    current_hop, drop_hop, expiry_hop, direction
                ):
                    self.trace.record(
                        self.clock.now, f"hop{drop_hop}", "drop", packet,
                        direction.value, note="loss",
                    )
                    return
            if died_of_ttl:
                self.trace.record(
                    self.clock.now, f"hop{expiry_hop}", "drop", packet,
                    direction.value, note="ttl-expired",
                )
                return
            packet.ttl = remaining_ttl
            if element is None:
                self._deliver(path, packet, direction, origin)
                return
            self._visit_element(
                path, packet, direction, element, plan, plan_index, drop_hop, origin
            )

        self.clock.schedule(delay, arrive)

    def _hop_reached(
        self, current_hop: int, target_hop: int, probe_hop: int, direction: Direction
    ) -> bool:
        """Was ``probe_hop`` strictly between current and target (inclusive)?"""
        low, high = sorted((current_hop, target_hop))
        return low < probe_hop <= high if direction is Direction.CLIENT_TO_SERVER else low <= probe_hop < high

    def _loss_before_ttl(
        self,
        current_hop: int,
        drop_hop: int,
        expiry_hop: Optional[int],
        direction: Direction,
    ) -> bool:
        if expiry_hop is None:
            return True
        if direction is Direction.CLIENT_TO_SERVER:
            return drop_hop <= expiry_hop
        return drop_hop >= expiry_hop

    def _visit_element(
        self,
        path: Path,
        packet: IPPacket,
        direction: Direction,
        element: PathElement,
        plan: List[PathElement],
        plan_index: int,
        drop_hop: Optional[int],
        origin: str,
    ) -> None:
        now = self.clock.now
        if isinstance(element, Tap):
            element.observe(packet.copy(), direction, now)
            self.trace.record(now, element.name, "observe", packet, direction.value)
            self._advance(
                path, packet, direction, element.hop, plan, plan_index + 1,
                drop_hop, origin,
            )
            return
        assert isinstance(element, InlineBox)
        result: ProcessResult = element.process(packet, direction, now)
        if result.verdict is Verdict.DROP:
            self.trace.record(
                now, element.name, "drop", packet, direction.value, note="middlebox"
            )
            return
        if result.verdict is Verdict.REPLACE:
            self.trace.record(
                now, element.name, "replace", packet, direction.value,
                note=f"{len(result.packets)} packet(s)",
            )
            for replacement in result.packets:
                self._advance(
                    path, replacement, direction, element.hop, plan,
                    plan_index + 1, drop_hop, origin,
                )
            return
        self.trace.record(now, element.name, "forward", packet, direction.value)
        self._advance(
            path, packet, direction, element.hop, plan, plan_index + 1,
            drop_hop, origin,
        )

    def _deliver(
        self, path: Path, packet: IPPacket, direction: Direction, origin: str
    ) -> None:
        destination_ip = (
            path.server_ip
            if direction is Direction.CLIENT_TO_SERVER
            else path.client_ip
        )
        host = self.hosts.get(destination_ip)
        if host is None:
            self.undeliverable += 1
            self.trace.record(
                self.clock.now, destination_ip, "drop", packet, direction.value,
                note="no such host",
            )
            return
        self.trace.record(
            self.clock.now, host.name, "deliver", packet, direction.value
        )
        host.handle_packet(packet, self.clock.now)

    # -- convenience ----------------------------------------------------------
    def run(self, duration: float = 10.0) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.clock.run_for(duration)
