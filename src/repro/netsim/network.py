"""The network: paths, hop-by-hop traversal, loss, delay, and injection.

A :class:`Path` joins exactly two endpoints ("client" and "server" ends,
matching the paper's threat model) and carries an ordered set of
:class:`~repro.netsim.path.PathElement` objects at integer hop positions.
Packet traversal is event-driven: each element processes the packet at
the sim time it would physically arrive there, so a GFW reset injected at
hop 8 genuinely races the original packet to the server at hop 14.

Traversal is the simulator's hottest loop, so it is allocation-free per
hop: the path precomputes, per direction, an immutable schedule of
element visits (rebuilt only when elements are added or the route
drifts — counted by the ``netsim.schedule_rebuilds`` metric), and each
in-flight packet rides a single slotted :class:`_Transit` event that is
mutated and re-posted on the clock hop after hop instead of allocating a
closure per hop.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from heapq import heappush
from typing import Dict, List, Optional, Tuple

from repro.rngledger import TrialRandom, as_trial_random
from repro.netstack.packet import IPPacket
from repro.netsim.node import Endpoint
from repro.netsim.path import (
    Direction,
    InlineBox,
    PathElement,
    ProcessResult,
    Tap,
    Verdict,
)
from repro.netsim.simclock import SimClock
from repro.netsim.trace import TraceRecorder
from repro.telemetry.metrics import get_registry

#: Counts full schedule precomputations.  The no-rebuild-per-packet
#: guarantee is tested against this counter: sending N packets down an
#: unchanged path must not move it.
_SCHEDULE_REBUILDS = get_registry().counter("netsim.schedule_rebuilds")


class Path:
    """A bidirectional multi-hop path between a client and a server.

    ``hop_count`` is the number of routers between the endpoints; elements
    sit at hops ``1 .. hop_count - 1``.  ``base_delay`` is the one-way
    propagation delay, divided evenly across hops.  ``loss_rate`` is the
    probability that a traversal loses the packet at a uniformly chosen
    hop — losing an insertion packet *before* the GFW hop is one of the
    paper's "Failure 2" causes (§3.4), and the hop-position draw models
    exactly that.
    """

    def __init__(
        self,
        client_ip: str,
        server_ip: str,
        hop_count: int = 14,
        base_delay: float = 0.04,
        loss_rate: float = 0.0,
        jitter: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if hop_count < 2:
            raise ValueError("a path needs at least two hops")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        self.client_ip = client_ip
        self.server_ip = server_ip
        self.hop_count = hop_count
        self.base_delay = base_delay
        self.loss_rate = loss_rate
        #: Per-segment delay jitter as a fraction of the nominal delay.
        #: Nonzero jitter lets closely spaced packets *reorder* in
        #: flight — endpoint reassembly must cope (and does).
        self.jitter = jitter
        self.name = name or f"{client_ip}<->{server_ip}"
        self.elements: List[PathElement] = []
        self.network: Optional["Network"] = None
        #: (hops ascending, elements ascending, elements descending) or
        #: None when stale; rebuilt lazily by :meth:`_build_schedule`.
        self._schedule: Optional[Tuple[tuple, tuple, tuple]] = None
        self._per_hop_delay = base_delay / hop_count

    # -- construction -------------------------------------------------------
    def add_element(self, element: PathElement) -> PathElement:
        """Attach an in-path box or on-path tap at its ``hop`` position."""
        if not 0 < element.hop < self.hop_count:
            raise ValueError(
                f"element hop {element.hop} outside path (1..{self.hop_count - 1})"
            )
        element.path = self
        self.elements.append(element)
        self.elements.sort(key=lambda item: item.hop)
        self._schedule = None
        return element

    def endpoints(self) -> Tuple[str, str]:
        return (self.client_ip, self.server_ip)

    def direction_from(self, sender_ip: str) -> Direction:
        if sender_ip == self.client_ip:
            return Direction.CLIENT_TO_SERVER
        if sender_ip == self.server_ip:
            return Direction.SERVER_TO_CLIENT
        raise ValueError(f"{sender_ip} is not an endpoint of {self.name}")

    def reset_elements(self) -> None:
        """Clear per-connection state on every element (between trials)."""
        for element in self.elements:
            element.reset_state()

    def clear_elements(self) -> None:
        """Detach every element (scenario reuse rebuilds them per trial)."""
        for element in self.elements:
            element.path = None
        self.elements.clear()
        self._schedule = None

    def reconfigure(
        self,
        hop_count: int,
        base_delay: float,
        loss_rate: float,
        jitter: float = 0.0,
    ) -> None:
        """Re-draw this path's geometry in place (scenario reuse).

        ``jitter`` is reset too — a pooled path previously configured for
        a jittery cell must not leak its delay noise into the next cell,
        exactly as ``loss_rate`` is re-drawn on every reuse.
        """
        if hop_count < 2:
            raise ValueError("a path needs at least two hops")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        self.hop_count = hop_count
        self.base_delay = base_delay
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._schedule = None
        self._per_hop_delay = base_delay / hop_count

    # -- route dynamics -------------------------------------------------------
    def drift_server_side(self, delta: int) -> None:
        """Lengthen (or shorten) the path beyond the last element.

        Models route changes between the GFW and the server: the client's
        previously measured hop count goes stale, so TTL-limited insertion
        packets may now reach the server (Failure 1) or, with negative
        drift, fall short of the GFW (Failure 2).
        """
        new_count = self.hop_count + delta
        last_element_hop = max((element.hop for element in self.elements), default=0)
        if new_count <= last_element_hop + 0:
            raise ValueError("drift would place the server before an element")
        self.hop_count = new_count
        self._schedule = None
        self._per_hop_delay = self.base_delay / new_count

    def drift_client_side(self, delta: int) -> None:
        """Lengthen (or shorten) the path before the first element.

        All element hop positions shift by ``delta``; models route changes
        between the client and the GFW.
        """
        first_element_hop = min(
            (element.hop for element in self.elements), default=self.hop_count
        )
        if first_element_hop + delta < 1:
            raise ValueError("drift would place an element before the client")
        for element in self.elements:
            element.hop += delta
        self.hop_count += delta
        self._schedule = None
        self._per_hop_delay = self.base_delay / self.hop_count

    # -- traversal --------------------------------------------------------------
    def per_hop_delay(self) -> float:
        return self._per_hop_delay

    def sender_hop(self, direction: Direction) -> int:
        """Hop coordinate (client-based) of the sender for ``direction``."""
        return 0 if direction is Direction.CLIENT_TO_SERVER else self.hop_count

    def destination_hop(self, direction: Direction) -> int:
        return self.hop_count if direction is Direction.CLIENT_TO_SERVER else 0

    def _build_schedule(self) -> Tuple[tuple, tuple, tuple]:
        """Precompute the per-direction visit schedules.

        ``self.elements`` is kept hop-sorted by :meth:`add_element`, but
        drift can perturb nothing about the *order* (hops shift
        uniformly), so one ascending sort is authoritative for both
        directions; the descending view is its reverse.
        """
        forward = tuple(sorted(self.elements, key=lambda item: item.hop))
        hops = tuple(element.hop for element in forward)
        schedule = (hops, forward, tuple(reversed(forward)))
        self._schedule = schedule
        _SCHEDULE_REBUILDS.inc()
        return schedule

    def travel_plan(self, origin_hop: int, direction: Direction) -> Tuple[tuple, int]:
        """The precomputed visit plan from ``origin_hop``: a tuple of
        elements in travel order plus the index of the first one ahead.

        No list is built per packet — the tuples are shared and the start
        index comes from a bisect over the cached hop array.
        """
        schedule = self._schedule
        if schedule is None:
            schedule = self._build_schedule()
        hops, forward, backward = schedule
        if direction is Direction.CLIENT_TO_SERVER:
            return forward, bisect_right(hops, origin_hop)
        return backward, len(hops) - bisect_left(hops, origin_hop)

    def elements_ahead(self, origin_hop: int, direction: Direction) -> List[PathElement]:
        """Elements the packet will meet, in travel order."""
        plan, start = self.travel_plan(origin_hop, direction)
        return list(plan[start:])

    def hop_distance(self, origin_hop: int, target_hop: int) -> int:
        return abs(target_hop - origin_hop)

    def inject(self, tap: Tap, packet: IPPacket, direction: Direction) -> None:
        """Entry point for on-path taps injecting forged packets."""
        if self.network is None:
            raise RuntimeError(f"path {self.name} is not attached to a network")
        packet.meta.setdefault("injected_by", tap.name)
        self.network.launch(self, packet, direction, origin_hop=tap.hop, origin=tap.name)


class _Transit:
    """One packet's in-flight traversal state, reused hop to hop.

    A single slotted event rides the clock for the whole traversal: after
    each element visit :meth:`fire` mutates ``current_hop``/``plan_index``
    and re-posts the same object.  ``cancelled`` is a class attribute —
    transits are never cancelled, and keeping it off the instance saves a
    slot write per packet.

    ``fire`` holds the whole arrival pipeline (TTL/loss accounting,
    element visit, delivery) in one frame: the old
    ``_arrive -> _visit_element -> _post`` chain cost three extra Python
    calls per event, which is real money at paper-sweep packet rates.

    ``fire`` also *fast-forwards*: after an element visit, if the heap
    top is strictly later than this packet's next arrival (and that
    arrival is within the clock's active run horizon), no other event can
    possibly execute in between — so the next leg is processed inline,
    advancing the clock directly instead of a heappush/heappop round
    trip.  Tie-breaking is preserved exactly: an equal-time heap entry
    was necessarily pushed earlier (lower seq) and must fire first, so
    equality suppresses the fast path.
    """

    __slots__ = (
        "network", "path", "packet", "direction", "current_hop",
        "plan", "plan_len", "plan_index", "drop_hop", "origin",
        "target_hop", "distance",
    )

    cancelled = False

    def fire(self) -> None:
        network = self.network
        path = self.path
        packet = self.packet
        direction = self.direction
        trace = network.trace
        clock = network.clock
        queue = clock._queue
        c2s = direction is Direction.CLIENT_TO_SERVER
        current_hop = self.current_hop
        target_hop = self.target_hop
        distance = self.distance
        index = self.plan_index
        plan = self.plan
        plan_len = self.plan_len
        drop_hop = self.drop_hop
        per_hop = path._per_hop_delay
        jitter = path.jitter
        while True:
            # TTL accounting: packet.ttl was the value at current_hop.
            remaining_ttl = packet.ttl - distance
            if remaining_ttl <= 0:
                expiry_hop: Optional[int] = (
                    current_hop + packet.ttl if c2s else current_hop - packet.ttl
                )
            else:
                expiry_hop = None
            if drop_hop is not None and network._hop_reached(
                current_hop, target_hop, drop_hop, direction
            ):
                if expiry_hop is None or network._loss_before_ttl(
                    current_hop, drop_hop, expiry_hop, direction
                ):
                    if trace.enabled:
                        trace.record(
                            clock._now, f"hop{drop_hop}", "drop", packet,
                            direction.value, note="loss",
                        )
                    return
            if expiry_hop is not None:
                if trace.enabled:
                    trace.record(
                        clock._now, f"hop{expiry_hop}", "drop", packet,
                        direction.value, note="ttl-expired",
                    )
                return
            packet.ttl = remaining_ttl
            if index >= plan_len:
                network._deliver(path, packet, direction, self.origin)
                return
            element = plan[index]
            now = clock._now
            if element.is_tap:
                if element.observe_copies or trace.enabled:
                    element.observe(packet.copy(), direction, now)
                else:
                    # Read-only taps (the GFW devices) opt out of the
                    # defensive copy; observation is synchronous, so later
                    # TTL mutation on the live object cannot be seen.
                    element.observe(packet, direction, now)
                if trace.enabled:
                    trace.record(now, element.name, "observe", packet, direction.value)
            else:
                result: ProcessResult = element.process(packet, direction, now)
                verdict = result.verdict
                if verdict is Verdict.DROP:
                    if trace.enabled:
                        trace.record(
                            now, element.name, "drop", packet, direction.value,
                            note="middlebox",
                        )
                    return
                if verdict is Verdict.REPLACE:
                    if trace.enabled:
                        trace.record(
                            now, element.name, "replace", packet, direction.value,
                            note=f"{len(result.packets)} packet(s)",
                        )
                    for replacement in result.packets:
                        clone = _Transit()
                        clone.network = network
                        clone.path = path
                        clone.packet = replacement
                        clone.direction = direction
                        clone.current_hop = element.hop
                        clone.plan = plan
                        clone.plan_len = plan_len
                        clone.plan_index = index + 1
                        clone.drop_hop = drop_hop
                        clone.origin = self.origin
                        network._post(clone)
                    return
                if trace.enabled:
                    trace.record(now, element.name, "forward", packet, direction.value)
            # Advance to the next leg (inlined _post).
            current_hop = element.hop
            index += 1
            if index < plan_len:
                target_hop = plan[index].hop
            elif c2s:
                target_hop = path.hop_count
            else:
                target_hop = 0
            distance = target_hop - current_hop
            if distance < 0:
                distance = -distance
            delay = per_hop * distance
            if jitter > 0.0 and delay > 0.0:
                delay *= 1.0 + network.rng.uniform(-jitter, jitter)
            arrival = clock._now + delay
            if (not queue or queue[0][0] > arrival) and arrival <= clock._run_until:
                # Nothing can execute before this arrival: take the next
                # leg inline instead of a heappush/heappop round trip.
                clock._now = arrival
                continue
            self.current_hop = current_hop
            self.plan_index = index
            self.target_hop = target_hop
            self.distance = distance
            clock._seq += 1
            heappush(queue, (arrival, clock._seq, self))
            return


class Network:
    """Holds hosts and paths and runs packet traversal on the event clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        # Coerced so the per-launch loss draw below can use the semantic
        # ``coin`` helper (recorded when the scenario builder binds a
        # replay ledger) with identical draw values for plain-RNG callers.
        self.rng: TrialRandom = (
            as_trial_random(rng) if rng is not None else TrialRandom(0)
        )
        # Note: "trace or default" would be wrong — an empty recorder is
        # falsy through its __len__.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.hosts: Dict[str, Endpoint] = {}
        self._paths: Dict[frozenset, Path] = {}
        #: Fast route lookup for the overwhelmingly common one-path
        #: topology (every paper scenario is client<->server); None when
        #: zero or several paths are attached.
        self._single_path: Optional[Path] = None
        #: Packets that arrived for an IP with no registered host.
        self.undeliverable = 0

    # -- topology -----------------------------------------------------------
    def add_host(self, host: Endpoint) -> Endpoint:
        if host.ip in self.hosts:
            raise ValueError(f"duplicate host IP {host.ip}")
        self.hosts[host.ip] = host
        host.network = self
        return host

    def add_path(self, path: Path) -> Path:
        key = frozenset(path.endpoints())
        if key in self._paths:
            raise ValueError(f"duplicate path between {path.endpoints()}")
        self._paths[key] = path
        path.network = self
        self._single_path = path if len(self._paths) == 1 else None
        return path

    def path_between(self, ip_a: str, ip_b: str) -> Path:
        try:
            return self._paths[frozenset((ip_a, ip_b))]
        except KeyError:
            raise KeyError(f"no path between {ip_a} and {ip_b}") from None

    def paths(self) -> List[Path]:
        return list(self._paths.values())

    # -- sending ------------------------------------------------------------
    def send(self, sender: Endpoint, packet: IPPacket) -> None:
        """Called by an endpoint to transmit toward ``packet.dst``."""
        single = self._single_path
        sender_ip = sender.ip
        if single is not None and sender_ip == single.client_ip and packet.dst == single.server_ip:
            path = single
            direction = Direction.CLIENT_TO_SERVER
        elif single is not None and sender_ip == single.server_ip and packet.dst == single.client_ip:
            path = single
            direction = Direction.SERVER_TO_CLIENT
        else:
            try:
                path = self.path_between(sender_ip, packet.dst)
            except KeyError:
                self.trace.record(
                    self.clock.now, sender.name, "drop", packet, note="no route"
                )
                self.undeliverable += 1
                return
            direction = path.direction_from(sender_ip)
        if self.trace.enabled:
            self.trace.record(
                self.clock.now, sender.name, "send", packet, direction.value
            )
        self.launch(
            path, packet, direction, origin_hop=path.sender_hop(direction),
            origin=sender.name,
        )

    def launch(
        self,
        path: Path,
        packet: IPPacket,
        direction: Direction,
        origin_hop: int,
        origin: str,
    ) -> None:
        """Start event-driven traversal of ``packet`` along ``path``.

        Loss is decided up front by drawing a drop hop; elements before the
        drop hop still see the packet (so the GFW may act on a packet the
        server never receives — a real and exploited asymmetry).
        """
        drop_hop: Optional[int] = None
        if path.loss_rate > 0 and self.rng.coin(path.loss_rate):
            destination_hop = path.destination_hop(direction)
            low, high = sorted((origin_hop, destination_hop))
            drop_hop = self.rng.randint(low + 1, high)
            if direction is Direction.SERVER_TO_CLIENT:
                # express as the hop (client coordinate) where it dies
                drop_hop = self.rng.randint(low, high - 1)
        plan, start = path.travel_plan(origin_hop, direction)
        transit = _Transit()
        transit.network = self
        transit.path = path
        transit.packet = packet
        transit.direction = direction
        transit.current_hop = origin_hop
        transit.plan = plan
        transit.plan_len = len(plan)
        transit.plan_index = start
        transit.drop_hop = drop_hop
        transit.origin = origin
        self._post(transit)

    # -- traversal engine -----------------------------------------------------
    def _post(self, transit: _Transit) -> None:
        """Compute the next leg (element visit or delivery) and enqueue."""
        path = transit.path
        index = transit.plan_index
        if index < transit.plan_len:
            target_hop = transit.plan[index].hop
        elif transit.direction is Direction.CLIENT_TO_SERVER:
            target_hop = path.hop_count
        else:
            target_hop = 0
        distance = target_hop - transit.current_hop
        if distance < 0:
            distance = -distance
        transit.target_hop = target_hop
        transit.distance = distance
        delay = path._per_hop_delay * distance
        if path.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.rng.uniform(-path.jitter, path.jitter)
        # Inlined SimClock.post: one call per traversal leg adds up at
        # paper-sweep packet rates, and this module is the clock's peer in
        # the engine (the entry ordering contract lives in simclock.py).
        clock = self.clock
        clock._seq += 1
        heappush(clock._queue, (clock._now + delay, clock._seq, transit))

    def _hop_reached(
        self, current_hop: int, target_hop: int, probe_hop: int, direction: Direction
    ) -> bool:
        """Was ``probe_hop`` strictly between current and target (inclusive)?"""
        low, high = sorted((current_hop, target_hop))
        return low < probe_hop <= high if direction is Direction.CLIENT_TO_SERVER else low <= probe_hop < high

    def _loss_before_ttl(
        self,
        current_hop: int,
        drop_hop: int,
        expiry_hop: Optional[int],
        direction: Direction,
    ) -> bool:
        if expiry_hop is None:
            return True
        if direction is Direction.CLIENT_TO_SERVER:
            return drop_hop <= expiry_hop
        return drop_hop >= expiry_hop

    def _deliver(
        self, path: Path, packet: IPPacket, direction: Direction, origin: str
    ) -> None:
        destination_ip = (
            path.server_ip
            if direction is Direction.CLIENT_TO_SERVER
            else path.client_ip
        )
        host = self.hosts.get(destination_ip)
        if host is None:
            self.undeliverable += 1
            self.trace.record(
                self.clock.now, destination_ip, "drop", packet, direction.value,
                note="no such host",
            )
            return
        if self.trace.enabled:
            self.trace.record(
                self.clock.now, host.name, "deliver", packet, direction.value
            )
        host.handle_packet(packet, self.clock.now)

    # -- convenience ----------------------------------------------------------
    def run(self, duration: float = 10.0) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.clock.run_for(duration)
