"""Network endpoints.

An :class:`Endpoint` is anything with an IP address that can receive
packets; :class:`Host` adds protocol-handler dispatch so the TCP stack,
UDP applications, and INTANG's interception layer can be layered on one
machine without the simulator knowing about any of them.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netstack.fragment import FragmentReassembler, OverlapPolicy
from repro.netstack.packet import IPPacket

PacketHandler = Callable[[IPPacket, float], None]
#: An egress filter sees an outbound packet and returns the list of packets
#: actually released to the network (possibly empty, reordered, or with
#: insertion packets added).  This is the simulator's equivalent of the
#: netfilter-queue hook INTANG uses on a real Linux client.
EgressFilter = Callable[[IPPacket, float], List[IPPacket]]


class Endpoint:
    """Minimal endpoint interface used by :class:`~repro.netsim.network.Network`."""

    def __init__(self, ip: str, name: Optional[str] = None) -> None:
        self.ip = ip
        self.name = name or ip
        self.network = None  # set by Network.add_host

    def handle_packet(self, packet: IPPacket, now: float) -> None:
        """Called by the network when a packet is delivered here."""
        raise NotImplementedError

    def send(self, packet: IPPacket) -> None:
        """Put ``packet`` on the wire toward ``packet.dst``."""
        if self.network is None:
            raise RuntimeError(f"host {self.name} is not attached to a network")
        self.network.send(self, packet)


class Host(Endpoint):
    """An endpoint with pluggable protocol handlers and egress filters.

    Handlers registered via :meth:`register_handler` receive every
    delivered (and, when fragmented, reassembled) packet in registration
    order until one claims it by returning True.  Egress filters wrap
    :meth:`send` and model client-side packet manipulation (INTANG).
    """

    def __init__(
        self,
        ip: str,
        name: Optional[str] = None,
        fragment_policy: OverlapPolicy = OverlapPolicy.LAST_WINS,
    ) -> None:
        super().__init__(ip, name)
        self._handlers: List[Callable[[IPPacket, float], bool]] = []
        self._egress_filters: List[EgressFilter] = []
        self._reassembler = FragmentReassembler(policy=fragment_policy)
        #: Count of packets that arrived but no handler claimed.
        self.unclaimed_packets = 0

    # -- receive ----------------------------------------------------------
    def handle_packet(self, packet: IPPacket, now: float) -> None:
        if packet.more_fragments or packet.frag_offset > 0:
            whole = self._reassembler.add(packet)
            if whole is None:
                return
            packet = whole
        for handler in list(self._handlers):
            if handler(packet, now):
                return
        self.unclaimed_packets += 1

    def register_handler(
        self, handler: Callable[[IPPacket, float], bool], prepend: bool = False
    ) -> None:
        """Add a packet handler; it returns True when it consumed a packet.

        ``prepend`` puts the handler ahead of existing ones — used by
        INTANG's ingress monitor, which must observe packets before the
        TCP stack claims them (it returns False so processing continues).
        """
        if prepend:
            self._handlers.insert(0, handler)
        else:
            self._handlers.append(handler)

    def unregister_handler(self, handler: Callable[[IPPacket, float], bool]) -> None:
        self._handlers.remove(handler)

    def reset(self) -> None:
        """Restore pristine state in place (scenario reuse between trials).

        Handlers and egress filters are dropped — the scenario builder
        re-registers the stack, sniffer, and interception layers in the
        same order a fresh host would see them.
        """
        self._handlers.clear()
        self._egress_filters.clear()
        self._reassembler = FragmentReassembler(policy=self._reassembler.policy)
        self.unclaimed_packets = 0

    # -- send ---------------------------------------------------------------
    def send(self, packet: IPPacket) -> None:
        """Send through any registered egress filters, then to the wire."""
        if not self._egress_filters:
            super().send(packet)
            return
        now = self.network.clock.now if self.network is not None else 0.0
        packets = [packet]
        for egress_filter in self._egress_filters:
            released: List[IPPacket] = []
            for candidate in packets:
                released.extend(egress_filter(candidate, now))
            packets = released
        for released_packet in packets:
            super().send(released_packet)

    def send_raw(self, packet: IPPacket) -> None:
        """Send bypassing egress filters (a raw socket, as INTANG uses)."""
        super().send(packet)

    def add_egress_filter(self, egress_filter: EgressFilter) -> None:
        self._egress_filters.append(egress_filter)

    def remove_egress_filter(self, egress_filter: EgressFilter) -> None:
        self._egress_filters.remove(egress_filter)

    def clear_egress_filters(self) -> None:
        self._egress_filters.clear()
