"""Discrete-event network simulator.

The simulator reproduces the paper's threat model (Fig. 1): a client and a
server joined by a multi-hop path, with *in-path* middleboxes that may
drop or rewrite packets and *on-path* taps (the GFW) that see copies of
packets and may inject — but never discard — traffic.

Key physical effects modelled, because the evasion strategies depend on
them:

- per-hop TTL decrement (low-TTL insertion packets die between the GFW's
  hop and the server's);
- per-path packet loss at a specific hop (an insertion packet lost before
  the GFW voids the strategy);
- route drift between trials (the measured hop count used to compute
  insertion TTLs goes stale);
- propagation delay, so handshakes and injected resets race realistically.
"""

from repro.netsim.simclock import SimClock
from repro.netsim.path import Direction, InlineBox, PathElement, Tap, Verdict
from repro.netsim.network import Network, Path
from repro.netsim.node import Endpoint, Host
from repro.netsim.trace import TraceEvent, TraceRecorder

__all__ = [
    "SimClock",
    "Direction",
    "InlineBox",
    "PathElement",
    "Tap",
    "Verdict",
    "Network",
    "Path",
    "Endpoint",
    "Host",
    "TraceEvent",
    "TraceRecorder",
]
