"""Batch-stepped execution: many independent trials, one event heap.

A paper-scale sweep runs thousands of *independent* trials whose event
loops are individually tiny (a few hundred events each).  Paying a fresh
heap, run-loop entry, and per-trial drain for each one is pure scheduler
overhead.  :class:`BatchSim` amortizes it: the clocks of many trials are
*adopted* into one shared binary heap and a single run loop drains all of
them together.

Correctness rests on two invariants:

1. **Trial-id tagging via sequence striding.**  Heap entries stay the
   ``(time, seq, event)`` 3-tuples the whole engine pushes (including the
   inlined push in ``network._post``); adoption simply sets the adopted
   clock's ``_seq`` to ``tid << TRIAL_SHIFT``.  Every scheduling path
   only ever increments ``_seq``, so each trial's entries occupy a
   disjoint, per-trial monotonic seq range: tie-breaking *within* a trial
   is byte-identical to serial execution, cross-trial keys never collide,
   and the run loop recovers the owning trial with ``seq >> TRIAL_SHIFT``.

2. **Per-trial virtual clocks.**  Adopted clocks share only the queue;
   each keeps its own ``_now`` (set from the popped entry's time before
   the event fires) and its own ``_run_until`` horizon, so timestamps
   observed by TCP stacks, GFW devices, and trace ladders are exactly
   what a private clock would have shown.  Trials never share RNGs or
   mutable state — independence is the caller's contract, enforced by the
   scenario layer which builds disjoint object graphs per trial.

An event popped past its own trial's horizon is discarded, which is
observably identical to the serial run loop leaving it queued (the
scenario is reset before any later run could fire it).

**Shared-device batch mode** (``BatchSim(shared=True)``) inverts the
independence contract on purpose: the fleet engine multiplexes many
*client flows* whose GFW devices deliberately share one flow table,
blacklist, and cluster, so the censor's stateful machinery is exercised
under concurrent load (LRU churn, resync pressure, blacklist collateral).
Two things change:

- each adoption carries an explicit **flow id** (:meth:`adopt`'s
  ``flow_id``), a stable workload-level identity that shared devices use
  to namespace their flow-table keys.  Trial ids restart at 0 for every
  ``BatchSim``; flow ids are global across the waves of a fleet run, so
  shared state keyed by them never aliases across waves;
- cross-trial event interleaving is now *observable* (trials race for
  the shared tables in heap order).  The heap order itself is still
  deterministic — ``(time, seq)`` keys are pure functions of the
  adopted trials — so a fleet wave remains reproducible; it is just no
  longer equivalent to running its trials one at a time, which is the
  entire point.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Union

from repro.netsim.simclock import SimClock, _INF
from repro.telemetry.trace import get_tracer

#: Bits reserved for the per-trial sequence counter.  2**32 scheduling
#: operations per trial is ~three orders of magnitude above the run
#: loop's runaway guard, so a trial can never overflow into the next
#: trial's seq range.
TRIAL_SHIFT = 32


class BatchSim:
    """Multiplexes many independent trials' events through one heap.

    Lifecycle::

        batch = BatchSim()
        for each trial:
            scenario = acquire_scenario(...)   # clock reset -> empty queue
            batch.adopt(scenario.clock)
            ... per-trial setup (posts events on the adopted clock) ...
        batch.run(duration)                    # drains every trial
        ... per-trial finalization ...
        batch.release()                        # detach clocks

    ``adopt`` must see a freshly reset clock (empty queue); resetting a
    clock *while* adopted would clear the shared heap and is a contract
    violation.

    ``shared=True`` declares shared-device mode: the caller's trials
    intentionally share mutable device state (the fleet workload), and
    each adoption may carry an explicit ``flow_id`` — the stable
    workload-level identity shared devices key their per-flow state by.
    """

    __slots__ = ("_queue", "_clocks", "_flow_ids", "shared")

    def __init__(self, shared: bool = False) -> None:
        self._queue: list = []
        self._clocks: List[SimClock] = []
        self._flow_ids: List[int] = []
        self.shared = shared

    @property
    def trials(self) -> int:
        return len(self._clocks)

    def adopt(self, clock: SimClock, flow_id: Optional[int] = None) -> int:
        """Point ``clock`` at the shared heap; returns its trial id.

        ``flow_id`` (shared-device mode) is the workload-level flow
        identity for this trial; it defaults to the trial id.  Flow ids
        must be unique within one batch — duplicate ids would alias
        shared per-flow state between two live trials.
        """
        if clock._queue:
            raise RuntimeError("adopt requires a freshly reset clock")
        if any(adopted is clock for adopted in self._clocks):
            raise RuntimeError("clock already adopted")
        tid = len(self._clocks)
        if flow_id is None:
            flow_id = tid
        elif flow_id in self._flow_ids:
            raise RuntimeError(f"flow id {flow_id} already adopted in this batch")
        self._clocks.append(clock)
        self._flow_ids.append(flow_id)
        clock._queue = self._queue
        clock._seq = tid << TRIAL_SHIFT
        return tid

    def flow_id_for(self, tid: int) -> int:
        """The workload flow id adopted under trial id ``tid``."""
        return self._flow_ids[tid]

    def run(
        self,
        until: Union[float, Sequence[float]],
        max_events_per_trial: int = 1_000_000,
    ) -> int:
        """Drain the shared heap, firing each event on its own clock.

        ``until`` is either one horizon shared by every trial or a
        per-trial sequence aligned with adoption order.  Returns the
        number of events executed across all trials.
        """
        clocks = self._clocks
        if isinstance(until, (int, float)):
            untils = [float(until)] * len(clocks)
        else:
            untils = [float(bound) for bound in until]
            if len(untils) != len(clocks):
                raise ValueError(
                    f"{len(untils)} horizons for {len(clocks)} adopted trials"
                )
        for clock, bound in zip(clocks, untils):
            clock._run_until = bound
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        budget = max_events_per_trial * max(1, len(clocks))
        tracer = get_tracer()
        span = tracer.begin(
            f"batch.run[{len(clocks)}]", "batch-run",
            trials=len(clocks), shared=self.shared,
        )
        try:
            while queue and executed < budget:
                time, seq, event = pop(queue)
                clock = clocks[seq >> TRIAL_SHIFT]
                if time > clock._run_until:
                    # This trial's horizon has passed; the serial loop
                    # would have left the event queued and never fired it.
                    continue
                if time > clock._now:
                    clock._now = time
                if event.cancelled:
                    continue
                event.fire()
                executed += 1
        finally:
            for clock, bound in zip(clocks, untils):
                if clock._now < bound:
                    clock._now = bound
                clock._run_until = _INF
            tracer.end(span, executed=executed)
        return executed

    def release(self) -> None:
        """Detach every adopted clock, giving each a fresh private queue.

        Leftover entries (post-horizon events, cancelled timers) are
        dropped with the shared heap — exactly what ``SimClock.reset``
        does to a private queue between trials.
        """
        for clock in self._clocks:
            clock._queue = []
            clock._run_until = _INF
        self._clocks.clear()
        self._flow_ids.clear()
        self._queue = []
