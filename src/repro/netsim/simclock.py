"""A minimal discrete-event clock.

Everything in the simulation — packet deliveries, TCP retransmission
timers, the GFW's 90-second blacklist expiry, INTANG cache TTLs — runs off
one :class:`SimClock`.  Time is a float in seconds and only advances when
:meth:`run` processes events, so experiments that span "90 seconds" of
blacklist time execute in microseconds of wall clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """Cancellation handle returned by :meth:`SimClock.schedule`."""

    __slots__ = ("cancelled", "time")

    def __init__(self, time: float) -> None:
        self.cancelled = False
        self.time = time

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """Priority-queue event scheduler with deterministic tie-breaking.

    Events scheduled for the same instant run in scheduling order, which
    keeps packet deliveries deterministic — important because several
    evasion strategies depend on the *order* in which a garbage packet and
    the real data reach the GFW.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        handle = EventHandle(self._now + delay)
        heapq.heappush(
            self._queue, (handle.time, next(self._sequence), handle, callback, args)
        )
        return handle

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute sim time ``when``."""
        return self.schedule(max(0.0, when - self._now), callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events executed.  ``max_events`` guards
        against runaway retransmission loops in buggy experiment setups.
        """
        executed = 0
        while self._queue and executed < max_events:
            time, _seq, handle, callback, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = max(self._now, time)
            if handle.cancelled:
                continue
            callback(*args)
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_for(self, duration: float) -> int:
        """Process events for ``duration`` sim-seconds from now."""
        return self.run(until=self._now + duration)

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for _, _, handle, _, _ in self._queue if not handle.cancelled)
