"""A minimal discrete-event clock.

Everything in the simulation — packet deliveries, TCP retransmission
timers, the GFW's 90-second blacklist expiry, INTANG cache TTLs — runs off
one :class:`SimClock`.  Time is a float in seconds and only advances when
:meth:`run` processes events, so experiments that span "90 seconds" of
blacklist time execute in microseconds of wall clock.

The queue holds ``(time, seq, event)`` entries where ``event`` is any
slotted object exposing a ``cancelled`` attribute and a ``fire()``
method.  ``seq`` is a per-clock monotonic counter, so same-instant events
execute in scheduling order (deterministic tie-breaking — several evasion
strategies depend on the *order* in which a garbage packet and the real
data reach the GFW) and the ``event`` object itself is never compared.

Two scheduling paths share the queue:

- :meth:`schedule` wraps a callback in an :class:`EventHandle` (which is
  itself the cancellation token timers hold on to);
- :meth:`post` enqueues a caller-owned event object directly — the
  packet-traversal hot path re-posts one mutable transit event per packet
  instead of allocating a closure per hop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

_INF = float("inf")


class Event:
    """Interface for heap entries: ``cancelled`` plus ``fire()``.

    Subclassing is optional — :meth:`SimClock.post` duck-types — but the
    class documents the contract and gives timers a shared ``cancel()``.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:  # pragma: no cover - interface only
        raise NotImplementedError


class EventHandle(Event):
    """A scheduled callback; returned by :meth:`SimClock.schedule` as the
    cancellation handle (TCP RTO timers keep one per in-flight segment)."""

    __slots__ = ("time", "callback", "args")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple) -> None:
        self.cancelled = False
        self.time = time
        self.callback = callback
        self.args = args

    def fire(self) -> None:
        self.callback(*self.args)


class SimClock:
    """Binary-heap event scheduler with deterministic tie-breaking.

    Batched execution (:class:`~repro.netsim.batch.BatchSim`) may point
    ``_queue`` at a heap shared by many clocks and stride ``_seq`` into a
    per-trial range; every scheduling path below only ever does
    ``_seq += 1`` and pushes 3-tuples, so it is oblivious to whether the
    queue is private or shared.

    ``_run_until`` is the horizon of the currently active :meth:`run`
    (``inf`` when idle).  The packet-traversal hot path reads it to decide
    whether a leg may be processed inline instead of via the heap: an
    arrival past the horizon must stay queued so that run-loop semantics
    (events beyond ``until`` never fire) are preserved exactly.
    """

    __slots__ = ("_now", "_seq", "_queue", "_run_until")

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._seq = 0
        self._queue: List[Tuple[float, int, Event]] = []
        self._run_until = _INF

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        handle = EventHandle(self._now + delay, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, (handle.time, self._seq, handle))
        return handle

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute sim time ``when``."""
        return self.schedule(max(0.0, when - self._now), callback, *args)

    def post(self, delay: float, event: Any) -> None:
        """Enqueue a pre-built event (``cancelled`` attr + ``fire()``).

        The zero-allocation path: no handle is created, so the caller owns
        cancellation (a never-cancelled event can expose ``cancelled`` as
        a class attribute).  ``delay`` must be non-negative; the hot paths
        that use this compute it from hop distances, which are.
        """
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events executed.  ``max_events`` guards
        against runaway retransmission loops in buggy experiment setups.
        """
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        bound = _INF if until is None else until
        self._run_until = bound
        try:
            while queue and executed < max_events:
                time = queue[0][0]
                if time > bound:
                    break
                event = pop(queue)[2]
                if time > self._now:
                    self._now = time
                if event.cancelled:
                    continue
                event.fire()
                executed += 1
        finally:
            self._run_until = _INF
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_for(self, duration: float) -> int:
        """Process events for ``duration`` sim-seconds from now."""
        return self.run(until=self._now + duration)

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def reset(self, start: float = 0.0) -> None:
        """Drop all queued events and rewind to ``start``.

        In-place, so every object holding this clock (TCP stacks, GFW
        devices, the network) stays valid across scenario reuse.
        """
        self._queue.clear()
        self._now = start
        self._seq = 0
        self._run_until = _INF
