"""Path elements: in-path middleboxes and on-path taps.

The paper's threat model distinguishes two capabilities (§2.1):

- an **in-path** device ("middlebox") forwards traffic and may therefore
  *drop or modify* packets;
- an **on-path** device (the GFW) sees *copies* of packets and may
  *inject* new ones, but can never remove a packet from the wire.

Both kinds sit at a hop index along a :class:`~repro.netsim.network.Path`;
TTL-expiry is evaluated against that index, which is what makes low-TTL
insertion packets work (they reach the GFW's hop but die before the
server's).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Union

from repro.netstack.packet import IPPacket


class Direction(enum.Enum):
    """Direction of travel along a path."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    @property
    def reverse(self) -> "Direction":
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


class Verdict(enum.Enum):
    """What an in-path element decided to do with a packet."""

    FORWARD = "forward"
    DROP = "drop"
    REPLACE = "replace"


class ProcessResult:
    """Outcome of :meth:`InlineBox.process`.

    ``REPLACE`` carries one or more packets that continue along the path
    in place of the original (e.g. a middlebox reassembling IP fragments
    into a single full packet, Table 2 row 1).
    """

    __slots__ = ("verdict", "packets")

    def __init__(
        self, verdict: Verdict, packets: Optional[Sequence[IPPacket]] = None
    ) -> None:
        self.verdict = verdict
        self.packets = list(packets) if packets else []

    @classmethod
    def forward(cls) -> "ProcessResult":
        return _FORWARD

    @classmethod
    def drop(cls) -> "ProcessResult":
        return _DROP

    @classmethod
    def replace(cls, packets: Sequence[IPPacket]) -> "ProcessResult":
        return cls(Verdict.REPLACE, packets)


# FORWARD/DROP results carry no payload, so every middlebox on every
# packet can share two frozen instances instead of allocating one each.
_FORWARD = ProcessResult(Verdict.FORWARD)
_DROP = ProcessResult(Verdict.DROP)


class PathElement:
    """Base class for anything positioned along a path.

    ``hop`` is the number of routers between the *client* endpoint and
    this element; a packet arrives here with ``ttl_initial - hop``
    remaining (and never arrives if that is <= 0).
    """

    #: Class-level dispatch flag read by the traversal hot loop: taps get
    #: ``observe``, everything else gets ``process``.  An attribute load
    #: beats an ``isinstance`` per element visit.
    is_tap = False

    def __init__(self, name: str, hop: int) -> None:
        self.name = name
        self.hop = hop
        self.path: Optional[object] = None  # backref set by Path.attach

    def hop_from(self, direction: Direction, total_hops: int) -> int:
        """Hop index measured from the sender for ``direction``."""
        if direction is Direction.CLIENT_TO_SERVER:
            return self.hop
        return total_hops - self.hop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} hop={self.hop}>"


class InlineBox(PathElement):
    """An in-path middlebox: may forward, drop, or rewrite packets."""

    def process(
        self, packet: IPPacket, direction: Direction, now: float
    ) -> ProcessResult:
        """Decide the fate of ``packet``; default is to forward."""
        return ProcessResult.forward()

    def reset_state(self) -> None:
        """Clear per-connection state between experiment trials."""


class Tap(PathElement):
    """An on-path monitor: sees copies, can inject, can never drop.

    Subclasses (the GFW device) implement :meth:`observe` and use
    :meth:`inject_toward_client` / :meth:`inject_toward_server` to put
    forged packets on the wire from their own hop position.
    """

    #: When True (the default, and the documented contract) the network
    #: hands :meth:`observe` a defensive copy.  A subclass that promises
    #: to treat observed packets as read-only — and not to retain them
    #: past the synchronous observe call — may set this to False and
    #: receive the live object, skipping two allocations per observation
    #: on the simulator's hottest path.
    observe_copies = True

    is_tap = True

    def observe(self, packet: IPPacket, direction: Direction, now: float) -> None:
        """Called with a copy of every packet that survives to this hop."""

    def reset_state(self) -> None:
        """Clear per-connection state between experiment trials."""

    # The two injection helpers delegate to the owning Path, which is set
    # when the tap is attached.  They exist so GFW code reads naturally.
    def inject_toward_client(self, packet: IPPacket) -> None:
        if self.path is None:
            raise RuntimeError(f"tap {self.name} is not attached to a path")
        self.path.inject(self, packet, Direction.SERVER_TO_CLIENT)  # type: ignore[attr-defined]

    def inject_toward_server(self, packet: IPPacket) -> None:
        if self.path is None:
            raise RuntimeError(f"tap {self.name} is not attached to a path")
        self.path.inject(self, packet, Direction.CLIENT_TO_SERVER)  # type: ignore[attr-defined]


def elements_in_direction(
    elements: List[PathElement], direction: Direction
) -> List[PathElement]:
    """Order path elements as encountered when travelling ``direction``."""
    ordered = sorted(elements, key=lambda element: element.hop)
    if direction is Direction.SERVER_TO_CLIENT:
        ordered.reverse()
    return ordered


PathElementLike = Union[InlineBox, Tap]
