"""Packet trace recording (a pcap-substitute for the simulator).

Traces serve two purposes in this reproduction:

1. debugging and tests — assertions about who saw which packet when;
2. regenerating the paper's sequence diagrams (Fig. 3 and Fig. 4) as
   textual packet ladders via :func:`format_ladder`.

Every recorded event is also published on the process telemetry bus
(:mod:`repro.telemetry.events`, component ``netsim``) when that bus is
enabled, so per-trial diagnosis can interleave packet observations with
GFW state transitions on one sequenced timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.netstack.packet import IPPacket
from repro.telemetry.events import get_bus


@dataclass
class TraceEvent:
    """One observation of a packet at a point in the network."""

    time: float
    location: str
    action: str  # "send", "deliver", "observe", "drop", "inject", ...
    summary: str
    direction: Optional[str] = None
    note: str = ""
    #: Monotonic per-recorder sequence number.  Sim-times collide all the
    #: time (a tap observes and forwards in the same instant), so the
    #: ladder sorts on ``(time, seq)`` to stay deterministic.
    seq: int = 0

    def format(self) -> str:
        head = f"{self.time * 1000.0:9.3f}ms  {self.location:<18} {self.action:<8}"
        tail = f"  ({self.note})" if self.note else ""
        return f"{head} {self.summary}{tail}"


@dataclass
class TraceRecorder:
    """Accumulates :class:`TraceEvent` objects from the network."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True
    #: Optional filter; return False to skip recording an event.
    predicate: Optional[Callable[[TraceEvent], bool]] = None
    _next_seq: int = 0

    def record(
        self,
        time: float,
        location: str,
        action: str,
        packet: Optional[IPPacket] = None,
        direction: Optional[str] = None,
        note: str = "",
    ) -> None:
        if not self.enabled:
            return
        summary = packet.summary() if packet is not None else ""
        event = TraceEvent(
            time=time,
            location=location,
            action=action,
            summary=summary,
            direction=direction,
            note=note,
            seq=self._next_seq,
        )
        if self.predicate is not None and not self.predicate(event):
            return
        self._next_seq += 1
        self.events.append(event)
        get_bus().publish(
            "netsim", action, time=time,
            location=location, summary=summary, direction=direction, note=note,
        )

    def clear(self) -> None:
        self.events.clear()

    def reset(self, enabled: Optional[bool] = None) -> None:
        """Restore pristine state in place (scenario reuse between trials).

        Unlike :meth:`clear`, the sequence counter rewinds too, so a
        reused recorder numbers events exactly like a fresh one.
        """
        self.events.clear()
        self._next_seq = 0
        if enabled is not None:
            self.enabled = enabled

    def filter(self, action: Optional[str] = None, location: Optional[str] = None) -> List[TraceEvent]:
        """Return events matching the given action and/or location."""
        selected = self.events
        if action is not None:
            selected = [event for event in selected if event.action == action]
        if location is not None:
            selected = [event for event in selected if event.location == location]
        return list(selected)

    def format_ladder(self) -> str:
        """Render the trace as a time-ordered packet ladder.

        Ties on sim-time are broken by the recording sequence number —
        sorting on time alone made ladders nondeterministic whenever two
        events shared an instant (``sorted`` is stable, but events are
        not guaranteed to arrive pre-sorted once taps inject at earlier
        timestamps than the packets they trail).
        """
        lines = [
            event.format()
            for event in sorted(self.events, key=lambda e: (e.time, e.seq))
        ]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
