"""GFW responsiveness measurement (§1: "an open-source tool to
automatically measure the GFW's responsiveness").

Before spending insertion packets on a path, INTANG can ask whether the
path is censored at all, and by which generation of equipment:

1. **canary probe** — open a throwaway connection and send a request
   carrying the probe keyword; classify the reaction (no reaction /
   type-1 resets / type-2 resets / both) from the forged packets'
   signatures;
2. **blacklist probe** — immediately retry with a *benign* request: a
   type-2 installation answers SYNs with forged SYN/ACKs during its
   90-second window, which is an unforgeable tell;
3. **model probe** — replay §4's multiple-SYN experiment (a wrong-ISN
   fake SYN ahead of a real handshake plus a keyworded request): the
   old model anchors on the fake ISN and stays silent; the evolved
   model resynchronizes via the legitimate SYN/ACK and resets.

All three reuse the measurement client's normal packet paths, so the
probe is exactly as observable as ordinary browsing plus one keyword.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netstack.packet import IPPacket, SYN, TCPSegment
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.tcp.stack import TCPHost

#: The keyword used as a canary; the paper probes with "ultrasurf".
CANARY_KEYWORD = b"ultrasurf"
PROBE_WINDOW = 6.0


@dataclass
class ResponsivenessReport:
    """What the probe learned about the path to one server."""

    server_ip: str
    #: The path resets keyworded requests.
    censored: bool = False
    #: Reset generations observed ("type1"/"type2"), from signatures.
    reset_types: List[str] = field(default_factory=list)
    #: Forged SYN/ACKs seen on retry — the type-2 blacklist tell.
    blacklist_active: bool = False
    #: The path's devices create TCBs from bare SYN/ACKs (NB1) — an
    #: evolved-model installation.
    evolved_model: Optional[bool] = None

    def summary(self) -> str:
        if not self.censored:
            return f"{self.server_ip}: path appears uncensored"
        kinds = "+".join(sorted(set(self.reset_types))) or "unknown"
        model = (
            "evolved" if self.evolved_model
            else "old" if self.evolved_model is not None
            else "unprobed"
        )
        blacklist = "with 90s blacklist" if self.blacklist_active else "no blacklist seen"
        return (
            f"{self.server_ip}: censored ({kinds} resets, {blacklist}, "
            f"{model} model)"
        )


class ResponsivenessProbe:
    """Runs the probe sequence against one server."""

    def __init__(
        self,
        host: Host,
        tcp_host: TCPHost,
        clock: SimClock,
        rng: Optional[random.Random] = None,
        insertion_ttl: int = 12,
    ) -> None:
        self.host = host
        self.tcp_host = tcp_host
        self.clock = clock
        self.rng = rng or random.Random(0x9B0BE)
        #: TTL for the model probe's fake SYN: must cross the censor's
        #: hop but fall short of the server (measure it like INTANG does).
        self.insertion_ttl = insertion_ttl
        self._forged: List[IPPacket] = []
        host.register_handler(self._sniff, prepend=True)

    def _sniff(self, packet: IPPacket, now: float) -> bool:
        origin = str(packet.meta.get("origin", ""))
        if origin.startswith("gfw"):
            self._forged.append(packet)
        return False

    # ------------------------------------------------------------------
    def probe(self, server_ip: str, port: int = 80,
              probe_model: bool = True) -> ResponsivenessReport:
        """Run the canary + blacklist (+ model) probes against a server."""
        report = ResponsivenessReport(server_ip=server_ip)
        self._forged.clear()
        self._canary_request(server_ip, port)
        resets = [p for p in self._forged if p.is_tcp and p.tcp.is_rst]
        report.censored = bool(resets)
        report.reset_types = sorted(
            {
                str(p.meta.get("origin", "")).replace("gfw-", "")
                for p in resets
            }
        )
        if report.censored:
            report.blacklist_active = self._blacklist_retry(server_ip, port)
            if probe_model:
                report.evolved_model = self._model_probe(server_ip, port)
        return report

    # -- probe stages ---------------------------------------------------------
    def _canary_request(self, server_ip: str, port: int) -> None:
        connection = self.tcp_host.connect(server_ip, port)
        request = (
            b"GET /?canary=" + CANARY_KEYWORD + b" HTTP/1.1\r\n"
            b"Host: probe\r\nConnection: close\r\n\r\n"
        )
        connection.on_established = lambda conn: conn.send(request)
        self.clock.run_for(PROBE_WINDOW)

    def _blacklist_retry(self, server_ip: str, port: int) -> bool:
        before = len(
            [p for p in self._forged if p.meta.get("forged") == "synack"]
        )
        self.tcp_host.connect(server_ip, port)
        self.clock.run_for(PROBE_WINDOW)
        after = len(
            [p for p in self._forged if p.meta.get("forged") == "synack"]
        )
        return after > before

    def _model_probe(self, server_ip: str, port: int) -> bool:
        """Distinguish the generations with §4's multiple-SYN experiment.

        A fake SYN (wrong ISN, TTL-limited) precedes a real handshake
        and a keyworded request with the *true* sequence numbers:

        - the **old** model anchors its TCB on the fake ISN and never
          sees the request in-window → silence;
        - the **evolved** model enters the re-synchronization state on
          the second SYN, is re-anchored correctly by the legitimate
          SYN/ACK, and detects → resets.

        Run after the blacklist lapses so the reaction is attributable.
        """
        self.clock.run_for(95.0)  # let any blacklist expire
        before = len([p for p in self._forged if p.is_tcp and p.tcp.is_rst])
        # The fake SYN must be on the wire *first*: the old model anchors
        # its TCB on the first SYN it sees, and the probe's signal is
        # precisely that anchor being wrong.
        src_port = self.rng.randint(50000, 59999)
        fake_syn = IPPacket(
            src=self.host.ip, dst=server_ip,
            payload=TCPSegment(
                src_port=src_port, dst_port=port,
                seq=self.rng.randrange(2**32), flags=SYN,
            ),
            ttl=self.insertion_ttl,
        )
        self.host.send_raw(fake_syn)
        connection = self.tcp_host.connect(server_ip, port, src_port=src_port)
        request = (
            b"GET /?canary=" + CANARY_KEYWORD + b" HTTP/1.1\r\n"
            b"Host: probe\r\nConnection: close\r\n\r\n"
        )
        connection.on_established = lambda conn: conn.send(request)
        self.clock.run_for(PROBE_WINDOW)
        after = len([p for p in self._forged if p.is_tcp and p.tcp.is_rst])
        return after > before
