"""Hop-count measurement for TTL-limited insertion packets (§7.1).

"We do that by first measuring the hop count from the client to the
server using a way similar as tcptraceroute.  Then, we subtract a small
δ from the measured hop count … In our evaluation, we heuristically
choose δ = 2, but INTANG can iteratively change this to converge to a
good value."

The estimator snapshots the path's hop count at measurement time, so a
later route drift leaves the cached value stale — reproducing the
"network dynamics" failure cause of §3.4.  :meth:`adjust` implements the
iterative convergence the paper sketches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.network import Network

#: The paper's heuristic safety margin.
DEFAULT_DELTA = 2

#: Never emit an insertion TTL below this; a TTL of 1 dies at the first
#: router and cannot reach any GFW device.
MIN_INSERTION_TTL = 2


class HopEstimator:
    """Caches per-destination hop counts measured tcptraceroute-style."""

    def __init__(self, network: Network, client_ip: str, delta: int = DEFAULT_DELTA) -> None:
        self.network = network
        self.client_ip = client_ip
        self.delta = delta
        self._measured: Dict[str, int] = {}
        self._adjustments: Dict[str, int] = {}

    def measure(self, server_ip: str, refresh: bool = False) -> int:
        """Measure (or return cached) hop count to ``server_ip``.

        The simulator substitute for a TTL-sweeping tcptraceroute: the
        returned value is the smallest TTL at which the server answers,
        which on a path with ``hop_count`` routers is ``hop_count + 1``.
        The value is read once and cached; route drift after this call
        makes the cache stale on purpose.
        """
        if refresh or server_ip not in self._measured:
            path = self.network.path_between(self.client_ip, server_ip)
            self._measured[server_ip] = path.hop_count + 1
        return self._measured[server_ip]

    def insertion_ttl(self, server_ip: str) -> int:
        """TTL for an insertion packet: measured hops − δ (± convergence)."""
        hops = self.measure(server_ip)
        adjustment = self._adjustments.get(server_ip, 0)
        return max(MIN_INSERTION_TTL, hops - self.delta + adjustment)

    def adjust(self, server_ip: str, step: int) -> int:
        """Iteratively nudge the TTL for a server (±1 after failures)."""
        self._adjustments[server_ip] = self._adjustments.get(server_ip, 0) + step
        return self.insertion_ttl(server_ip)

    def forget(self, server_ip: Optional[str] = None) -> None:
        if server_ip is None:
            self._measured.clear()
            self._adjustments.clear()
        else:
            self._measured.pop(server_ip, None)
            self._adjustments.pop(server_ip, None)
