"""Measurement-driven strategy selection (§6).

"When a new connection is initiated, INTANG chooses the most promising
strategy based on historical measurement results (with the help of
caching), to a particular server IP address.  Upon the completion of a
successful trial, it caches the strategy ID …"

Records live in the Redis-substitute :class:`~repro.core.cache.KeyValueStore`
with a TTL ("to counter changes in the network or the server, the cached
record is retained only for a certain period of time") behind a
transient LRU front cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cache import KeyValueStore, LRUCache

#: How long a per-server record stays valid (seconds of sim time).
DEFAULT_RECORD_TTL = 3600.0


@dataclass
class StrategyRecord:
    """Success history of the strategies tried against one server."""

    #: strategy id -> [successes, failures]
    outcomes: Dict[str, List[int]] = field(default_factory=dict)
    #: The strategy that most recently succeeded, if any.
    pinned: Optional[str] = None
    #: Consecutive failures of the pinned strategy.  One failure can be
    #: transient loss; only repeated failure evicts the pin.
    pinned_failstreak: int = 0

    def note(self, strategy_id: str, success: bool) -> None:
        counts = self.outcomes.setdefault(strategy_id, [0, 0])
        counts[0 if success else 1] += 1
        if success:
            self.pinned = strategy_id
            self.pinned_failstreak = 0
        elif self.pinned == strategy_id:
            self.pinned_failstreak += 1
            if self.pinned_failstreak >= 2:
                self.pinned = None
                self.pinned_failstreak = 0

    def success_rate(self, strategy_id: str) -> float:
        counts = self.outcomes.get(strategy_id)
        if not counts or sum(counts) == 0:
            return 0.0
        return counts[0] / (counts[0] + counts[1])

    def attempts(self, strategy_id: str) -> int:
        counts = self.outcomes.get(strategy_id)
        return sum(counts) if counts else 0

    def to_json(self) -> dict:
        return {
            "outcomes": self.outcomes,
            "pinned": self.pinned,
            "pinned_failstreak": self.pinned_failstreak,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StrategyRecord":
        record = cls()
        record.outcomes = {
            key: list(value) for key, value in payload.get("outcomes", {}).items()
        }
        record.pinned = payload.get("pinned")
        record.pinned_failstreak = int(payload.get("pinned_failstreak", 0))
        return record


class StrategySelector:
    """Chooses the most promising strategy for each server IP."""

    def __init__(
        self,
        store: KeyValueStore,
        priority: Sequence[str],
        lru_capacity: int = 128,
        record_ttl: float = DEFAULT_RECORD_TTL,
        max_failures_before_rotating: int = 1,
    ) -> None:
        if not priority:
            raise ValueError("the priority list cannot be empty")
        self.store = store
        self.priority = list(priority)
        self.front_cache = LRUCache(capacity=lru_capacity)
        self.record_ttl = record_ttl
        self.max_failures = max_failures_before_rotating
        self.choices_made = 0

    # ------------------------------------------------------------------
    def choose(self, server_ip: str) -> str:
        """Pick a strategy for a new connection to ``server_ip``."""
        self.choices_made += 1
        record = self._record_for(server_ip)
        if record.pinned is not None:
            return record.pinned
        # Prefer untried strategies in priority order; skip ones that
        # have repeatedly failed; fall back to the least-bad performer.
        for strategy_id in self.priority:
            failures = record.outcomes.get(strategy_id, [0, 0])[1]
            if record.attempts(strategy_id) == 0 or failures < self.max_failures:
                return strategy_id
        return max(self.priority, key=record.success_rate)

    def report(self, server_ip: str, strategy_id: str, success: bool) -> None:
        """Feed back a trial outcome; refreshes the record's TTL."""
        record = self._record_for(server_ip)
        record.note(strategy_id, success)
        self._save(server_ip, record)

    def record_for(self, server_ip: str) -> StrategyRecord:
        """Read-only view of the record (for tests and reporting)."""
        return self._record_for(server_ip)

    # ------------------------------------------------------------------
    def _key(self, server_ip: str) -> str:
        return f"strategy-record:{server_ip}"

    def _record_for(self, server_ip: str) -> StrategyRecord:
        cached = self.front_cache.get(server_ip)
        if cached is not None:
            # The LRU is transient: re-validate against the store, which
            # owns expiry (the LRU may outlive the record's TTL).
            if self.store.exists(self._key(server_ip)):
                return cached
        payload = self.store.get(self._key(server_ip))
        record = (
            StrategyRecord.from_json(payload) if payload else StrategyRecord()
        )
        self.front_cache.put(server_ip, record)
        return record

    def _save(self, server_ip: str, record: StrategyRecord) -> None:
        self.store.set(self._key(server_ip), record.to_json(), ttl=self.record_ttl)
        self.front_cache.put(server_ip, record)
