"""Caching layer: a Redis substitute and a transient LRU front cache.

§6: "INTANG employs Redis as an in-memory key-value store … data
persistency, event-driven programming, key expiration … We also maintain
in the main thread a transient Least Recently Used (LRU) cache
implemented using linked lists and hash tables (to reduce Redis store
access latency)."

:class:`KeyValueStore` reproduces the used feature set (get/set/delete,
per-key TTL, expiry callbacks, snapshot persistence) against the
simulation clock; :class:`LRUCache` is the O(1) linked-list+dict front
cache.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class KeyValueStore:
    """A TTL'd in-memory key-value store (the Redis stand-in).

    Time is supplied by a callable so the store runs on simulation time;
    pass ``clock.now``'s getter (``lambda: clock.now``).
    """

    def __init__(self, time_source: Callable[[], float]) -> None:
        self._time = time_source
        self._data: Dict[str, Any] = {}
        self._expiry: Dict[str, float] = {}
        self._expire_callbacks: List[Callable[[str], None]] = []
        #: Earliest deadline among TTL'd keys; gets hit before any key can
        #: be stale, so reads skip per-key expiry checks until then.
        self._next_expiry = float("inf")

    # -- basic operations ---------------------------------------------------
    def set(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        self._data[key] = value
        if ttl is not None:
            deadline = self._time() + ttl
            self._expiry[key] = deadline
            if deadline < self._next_expiry:
                self._next_expiry = deadline
        else:
            self._expiry.pop(key, None)

    def _maybe_sweep(self) -> None:
        """Lazy expiry: sweep only once the earliest deadline has passed.

        Until then no key can be expired, so the hot read path is a plain
        dict access with one float comparison — no per-key TTL lookup.
        """
        if self._expiry and self._time() >= self._next_expiry:
            self.sweep()

    def get(self, key: str, default: Any = None) -> Any:
        self._maybe_sweep()
        return self._data.get(key, default)

    def delete(self, key: str) -> bool:
        existed = key in self._data
        self._data.pop(key, None)
        self._expiry.pop(key, None)
        return existed

    def exists(self, key: str) -> bool:
        self._maybe_sweep()
        return key in self._data

    def ttl(self, key: str) -> Optional[float]:
        """Remaining lifetime, None when persistent or missing."""
        if not self.exists(key):
            return None
        expiry = self._expiry.get(key)
        if expiry is None:
            return None
        return max(0.0, expiry - self._time())

    def expire(self, key: str, ttl: float) -> bool:
        if not self.exists(key):
            return False
        deadline = self._time() + ttl
        self._expiry[key] = deadline
        if deadline < self._next_expiry:
            self._next_expiry = deadline
        return True

    def keys(self) -> List[str]:
        self.sweep()
        return list(self._data.keys())

    def items(self) -> Iterator[Tuple[str, Any]]:
        self.sweep()
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        self.sweep()
        return len(self._data)

    # -- expiry -------------------------------------------------------------
    def on_expire(self, callback: Callable[[str], None]) -> None:
        """Register an expiry observer (Redis keyspace-notification style)."""
        self._expire_callbacks.append(callback)

    def sweep(self) -> int:
        """Evict all expired keys; returns the eviction count."""
        expired = [key for key in self._expiry if self._is_expired(key)]
        for key in expired:
            self._evict(key)
        # Recompute after callbacks ran — they may have set new TTLs.
        self._next_expiry = min(self._expiry.values(), default=float("inf"))
        return len(expired)

    def _is_expired(self, key: str) -> bool:
        expiry = self._expiry.get(key)
        return expiry is not None and self._time() >= expiry

    def _evict(self, key: str) -> None:
        self._data.pop(key, None)
        self._expiry.pop(key, None)
        for callback in self._expire_callbacks:
            callback(key)

    # -- persistence ------------------------------------------------------------
    def dump(self) -> str:
        """Serialize non-expired JSON-representable entries."""
        self.sweep()
        payload = {
            "data": {
                key: value
                for key, value in self._data.items()
                if _json_safe(value)
            },
            "expiry": dict(self._expiry),
        }
        return json.dumps(payload)

    def load(self, blob: str) -> None:
        payload = json.loads(blob)
        self._data.update(payload.get("data", {}))
        self._expiry.update(payload.get("expiry", {}))
        self.sweep()  # also refreshes the next-expiry watermark


def _json_safe(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


class _Node:
    __slots__ = ("key", "value", "prev", "next")

    def __init__(self, key: str, value: Any) -> None:
        self.key = key
        self.value = value
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUCache:
    """O(1) least-recently-used cache (doubly linked list + dict)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._map: Dict[str, _Node] = {}
        self._head: Optional[_Node] = None  # most recent
        self._tail: Optional[_Node] = None  # least recent
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, default: Any = None) -> Any:
        node = self._map.get(key)
        if node is None:
            self.misses += 1
            return default
        self.hits += 1
        self._move_to_front(node)
        return node.value

    def put(self, key: str, value: Any) -> None:
        node = self._map.get(key)
        if node is not None:
            node.value = value
            self._move_to_front(node)
            return
        node = _Node(key, value)
        self._map[key] = node
        self._link_front(node)
        if len(self._map) > self.capacity:
            assert self._tail is not None
            evicted = self._tail
            self._unlink(evicted)
            del self._map[evicted.key]
            self.evictions += 1

    def delete(self, key: str) -> bool:
        """Drop one entry (used for invalidation by the fronted store)."""
        node = self._map.pop(key, None)
        if node is None:
            return False
        self._unlink(node)
        return True

    def clear(self) -> None:
        self._map.clear()
        self._head = None
        self._tail = None

    def __contains__(self, key: str) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    # -- linked-list plumbing ---------------------------------------------
    def _move_to_front(self, node: _Node) -> None:
        if self._head is node:
            return
        self._unlink(node)
        self._link_front(node)

    def _link_front(self, node: _Node) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        if node.next is not None:
            node.next.prev = node.prev
        if self._head is node:
            self._head = node.next
        if self._tail is node:
            self._tail = node.prev
        node.prev = None
        node.next = None


_MISS = object()


class FrontedStore:
    """A :class:`KeyValueStore` fronted by a transient :class:`LRUCache`.

    This is §6's composition made explicit: "We also maintain in the
    main thread a transient Least Recently Used (LRU) cache … to reduce
    Redis store access latency."  Reads hit the front cache first;
    writes go through to the store and refresh the front; deletions,
    TTL expiry, and snapshot loads invalidate the front so it can never
    serve a value the store has dropped.

    The class mirrors the :class:`KeyValueStore` surface, so anything
    holding a store (the strategy selector, the historical-result
    cache) works against either unchanged.
    """

    def __init__(self, store: KeyValueStore, front_capacity: int = 256) -> None:
        self.store = store
        self.front = LRUCache(front_capacity)
        store.on_expire(self._invalidate)

    def _invalidate(self, key: str) -> None:
        self.front.delete(key)

    # -- the KeyValueStore surface ----------------------------------------
    def set(self, key: str, value: Any, ttl: Optional[float] = None) -> None:
        self.store.set(key, value, ttl=ttl)
        self.front.put(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        # Let the store retire due keys (firing our invalidation hook)
        # before trusting the front cache.
        self.store._maybe_sweep()
        value = self.front.get(key, _MISS)
        if value is not _MISS:
            return value
        value = self.store.get(key, _MISS)
        if value is _MISS:
            return default
        self.front.put(key, value)
        return value

    def delete(self, key: str) -> bool:
        self.front.delete(key)
        return self.store.delete(key)

    def exists(self, key: str) -> bool:
        return self.store.exists(key)

    def ttl(self, key: str) -> Optional[float]:
        return self.store.ttl(key)

    def expire(self, key: str, ttl: float) -> bool:
        return self.store.expire(key, ttl)

    def keys(self) -> List[str]:
        return self.store.keys()

    def items(self) -> Iterator[Tuple[str, Any]]:
        return self.store.items()

    def __len__(self) -> int:
        return len(self.store)

    def on_expire(self, callback: Callable[[str], None]) -> None:
        self.store.on_expire(callback)

    def sweep(self) -> int:
        return self.store.sweep()

    def clear_front(self) -> None:
        """Drop the transient layer (the durable store is untouched)."""
        self.front.clear()

    # -- persistence -------------------------------------------------------
    def dump(self) -> str:
        return self.store.dump()

    def load(self, blob: str) -> None:
        self.store.load(blob)
        # Loaded entries may shadow anything cached; start the transient
        # layer over (it is transient by definition, §6).
        self.front.clear()
