"""The DNS forwarder thread of INTANG (§6).

"It converts each DNS over UDP request to a DNS TCP request and sends it
to an unpolluted, public DNS resolver … We apply the same set of
strategies for the TCP connection that carries DNS requests and
responses … When a DNS TCP response is received, it will be converted
back to a DNS UDP response and processed normally by the application.
So it is completely transparent to applications."

Mechanically: the interception framework hands every outbound UDP packet
to :meth:`_hook`; DNS queries are swallowed (the poisoner never sees
them), re-issued over a TCP connection that itself runs through the
active evasion strategy, and the eventual answer is re-wrapped as a UDP
response *spoofed from the originally queried resolver* and delivered
straight up the local stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netstack.packet import IPPacket, UDPDatagram
from repro.netsim.simclock import SimClock
from repro.core.framework import InterceptionFramework
from repro.tcp.stack import TCPHost

DNS_PORT = 53


class DNSForwarder:
    """UDP→TCP DNS conversion, transparent to the querying application."""

    def __init__(
        self,
        framework: InterceptionFramework,
        tcp_host: TCPHost,
        resolver_ip: str,
        clock: SimClock,
        resolver_port: int = DNS_PORT,
    ) -> None:
        self.framework = framework
        self.tcp_host = tcp_host
        self.resolver_ip = resolver_ip
        self.resolver_port = resolver_port
        self.clock = clock
        #: qid -> (original resolver ip, client source port)
        self._pending: Dict[int, Tuple[str, int]] = {}
        self.queries_forwarded = 0
        self.responses_returned = 0
        framework.udp_hooks.append(self._hook)

    # ------------------------------------------------------------------
    def _hook(self, packet: IPPacket, now: float) -> Optional[List[IPPacket]]:
        datagram = packet.udp
        if datagram.dst_port != DNS_PORT:
            return None  # not ours; let it pass
        qid = self._query_id(datagram.payload)
        if qid is None:
            return None
        self._pending[qid] = (packet.dst, datagram.src_port)
        self.queries_forwarded += 1
        self._forward_over_tcp(datagram.payload, qid)
        return []  # swallow the UDP query entirely

    def _query_id(self, payload: bytes) -> Optional[int]:
        from repro.apps.dns import parse_message

        try:
            message = parse_message(payload)
        except ValueError:
            return None
        if message.is_response:
            return None
        return message.qid

    def _forward_over_tcp(self, query: bytes, qid: int) -> None:
        connection = self.tcp_host.connect(self.resolver_ip, self.resolver_port)
        buffer = bytearray()

        def on_established(conn) -> None:
            conn.send(len(query).to_bytes(2, "big") + query)

        def on_data(conn, data: bytes) -> None:
            buffer.extend(data)
            while len(buffer) >= 2:
                length = int.from_bytes(buffer[:2], "big")
                if len(buffer) < 2 + length:
                    break
                response = bytes(buffer[2 : 2 + length])
                del buffer[: 2 + length]
                self._return_response(response)
                conn.close()

        connection.on_established = on_established
        connection.on_data = on_data

    def _return_response(self, response: bytes) -> None:
        from repro.apps.dns import parse_message

        try:
            message = parse_message(response)
        except ValueError:
            return
        pending = self._pending.pop(message.qid, None)
        if pending is None:
            return
        original_resolver, client_port = pending
        self.responses_returned += 1
        # Deliver locally, spoofed as the resolver the application asked:
        # transparency means the app never learns the query took a detour.
        reply = IPPacket(
            src=original_resolver,
            dst=self.framework.host.ip,
            payload=UDPDatagram(
                src_port=DNS_PORT, dst_port=client_port, payload=response
            ),
        )
        reply.meta["origin"] = "intang-dns-forwarder"
        self.framework.host.handle_packet(reply, self.clock.now)
