"""Environment-knob parsing shared by every ``REPRO_*`` switch.

The harness grew one ad-hoc ``os.environ`` read per knob
(``REPRO_WORKERS`` in the parallel engine, ``REPRO_RESULT_CACHE`` in the
result cache, now ``REPRO_TELEMETRY`` in the telemetry layer), each with
its own idea of what "truthy" means and each silently swallowing typos.
This module is the single parser: booleans accept the usual spellings,
integers are validated, and a malformed value raises :class:`EnvKnobError`
naming the variable — a typo'd knob should fail loudly, not quietly run
the experiment with the default.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["EnvKnobError", "env_flag", "env_int"]

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


class EnvKnobError(ValueError):
    """A ``REPRO_*`` environment variable holds an unparseable value."""


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean knob; unset or empty means ``default``.

    Accepted spellings (case-insensitive): 1/0, true/false, yes/no,
    on/off.  Anything else raises :class:`EnvKnobError`.
    """
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    if raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    raise EnvKnobError(
        f"{name}={os.environ[name]!r} is not a boolean "
        f"(use one of: 1/0, true/false, yes/no, on/off)"
    )


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
) -> int:
    """Parse an integer knob; unset or empty means ``default``.

    A non-integer value, or one below ``minimum``, raises
    :class:`EnvKnobError`.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(
            f"{name}={os.environ[name]!r} is not an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise EnvKnobError(f"{name}={value} is below the minimum of {minimum}")
    return value
