"""INTANG assembled (§6, Fig. 2).

Wires together the interception framework (main thread), the
Redis-substitute store + LRU caches (caching thread), the strategy
selector, the hop estimator, and optionally the DNS forwarder (DNS
thread).  The real tool's three threads collapse to one event loop in
simulation, but every component boundary of Fig. 2 is preserved.

Typical use::

    intang = INTANG(host=client_host, tcp_host=client_tcp, clock=clock,
                    network=net)
    connection, exchange = HTTPClient(client_tcp).get(server_ip, ...)
    clock.run_for(5)
    intang.report_result(server_ip, exchange.got_response)
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.tcp.stack import TCPHost
from repro.core.cache import FrontedStore, KeyValueStore
from repro.core.dns_forwarder import DNSForwarder
from repro.core.framework import InterceptionFramework
from repro.core.hops import HopEstimator
from repro.core.selection import StrategySelector
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry


class INTANG:
    """The measurement-driven evasion tool."""

    def __init__(
        self,
        host: Host,
        tcp_host: TCPHost,
        clock: SimClock,
        network: Optional[Network] = None,
        rng: Optional[random.Random] = None,
        fixed_strategy: Optional[str] = None,
        priority: Optional[Sequence[str]] = None,
        dns_resolver_ip: Optional[str] = None,
        hop_delta: int = 2,
        selector: Optional[StrategySelector] = None,
    ) -> None:
        from repro.strategies.registry import (
            DEFAULT_PRIORITY,
            make_strategy_factory,
        )

        self.host = host
        self.tcp_host = tcp_host
        self.clock = clock
        self.rng = rng or random.Random(0x1A7A46)
        # A selector may be shared across INTANG instances (the paper's
        # Redis store persists across restarts); otherwise build our own.
        if selector is not None:
            self.selector = selector
            self.store = selector.store
        else:
            # Fig. 2's caching layer verbatim: the Redis substitute
            # behind a transient main-thread LRU front.
            self.store = FrontedStore(
                KeyValueStore(time_source=lambda: clock.now)
            )
            self.selector = StrategySelector(
                self.store, priority=list(priority or DEFAULT_PRIORITY)
            )
        self.fixed_strategy = fixed_strategy
        self.hop_estimator: Optional[HopEstimator] = None
        if network is not None:
            self.hop_estimator = HopEstimator(network, host.ip, delta=hop_delta)
        #: connection key -> (server_ip, strategy_id) for result feedback.
        self.active: Dict[Tuple[int, str, int], Tuple[str, str]] = {}
        self._make_strategy_factory = make_strategy_factory

        self.framework = InterceptionFramework(
            host=host,
            clock=clock,
            rng=self.rng,
            strategy_factory=self._build_strategy,
            insertion_ttl_for=self._insertion_ttl,
        )
        self.dns_forwarder: Optional[DNSForwarder] = None
        if dns_resolver_ip is not None:
            self.dns_forwarder = DNSForwarder(
                self.framework, tcp_host, dns_resolver_ip, clock
            )

    # ------------------------------------------------------------------
    def _insertion_ttl(self, server_ip: str) -> int:
        if self.hop_estimator is None:
            return 10
        return self.hop_estimator.insertion_ttl(server_ip)

    def _build_strategy(self, ctx: ConnectionContext) -> EvasionStrategy:
        strategy_id = self.fixed_strategy or self.selector.choose(ctx.dst_ip)
        self.active[ctx.key()] = (ctx.dst_ip, strategy_id)
        get_registry().counter("intang.strategies_built").inc()
        get_bus().publish(
            "intang", "strategy_selected", time=self.clock.now,
            server=ctx.dst_ip, strategy=strategy_id,
            fixed=self.fixed_strategy is not None,
        )
        factory = self._make_strategy_factory(strategy_id)
        return factory(ctx)

    # ------------------------------------------------------------------
    def report_result(self, server_ip: str, success: bool) -> None:
        """Feed back the outcome of the most recent trial to a server."""
        strategy_id = self.last_strategy_for(server_ip)
        if strategy_id is None:
            return
        registry = get_registry()
        registry.counter(
            "intang.results_success" if success else "intang.results_failure"
        ).inc()
        get_bus().publish(
            "intang", "result_reported", time=self.clock.now,
            server=server_ip, strategy=strategy_id, success=success,
        )
        self.selector.report(server_ip, strategy_id, success)
        if not success and self.hop_estimator is not None:
            # §7.1: INTANG "can iteratively change [δ] to converge to a
            # good value" — refresh the hop measurement after a failure.
            self.hop_estimator.forget(server_ip)

    def last_strategy_for(self, server_ip: str) -> Optional[str]:
        for key in reversed(list(self.active)):
            ip, strategy_id = self.active[key]
            if ip == server_ip:
                return strategy_id
        return None

    def forget_finished_connections(self) -> int:
        """Prune bookkeeping for connections the framework dropped."""
        stale = [key for key in self.active if key not in self.framework.contexts]
        for key in stale:
            del self.active[key]
        return len(stale)

    def insertions_sent(self) -> int:
        return sum(
            len(ctx.insertions_sent) for ctx in self.framework.contexts.values()
        )

    def detach(self) -> None:
        """Stop intercepting (the tool can be toggled off live)."""
        self.framework.detach()

    def attach(self) -> None:
        self.framework.attach()

    # -- persistence (the Redis store's data-persistency feature, §6) -----
    def save_state(self) -> str:
        """Serialize the measurement history (per-server records)."""
        return self.store.dump()

    def load_state(self, blob: str) -> None:
        """Restore measurement history saved by :meth:`save_state`.

        A restarted INTANG instance resumes with the strategies it had
        already converged on per server — the point of §6's persistent
        key-value store.
        """
        self.store.load(blob)


__all__ = ["INTANG"]

