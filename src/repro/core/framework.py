"""The packet-interception framework (netfilter-queue analogue, §6).

"The main thread runs a packet processing loop which intercepts certain
packets using the netfilter queue and injects insertion packets using
raw sockets.  While the packets are being processed, they are held in
the queue i.e., are not sent out until the processing is complete."

On the simulator the same two hooks exist on the client
:class:`~repro.netsim.node.Host`:

- an **egress filter** — every locally generated packet passes through
  the active strategy's ``on_outgoing`` before reaching the wire; the
  strategy's return value (original, replacements, plus any insertions)
  is released in order;
- an **ingress monitor** — a prepended, non-claiming handler that lets
  strategies observe SYN/ACKs and resets without stealing them from the
  TCP stack.

Raw-socket injection is :meth:`Host.send_raw`, which bypasses the egress
filter so insertion packets are not themselves re-processed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.netstack.packet import IPPacket, TCPSegment
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.core.strategy_base import ConnectionContext, EvasionStrategy, NoStrategy
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry

#: factory(ctx) -> strategy instance for a freshly opened connection.
StrategyFactory = Callable[[ConnectionContext], EvasionStrategy]

ConnKey = Tuple[int, str, int]  # (src_port, dst_ip, dst_port)


class InterceptionFramework:
    """Wires strategies into a client host's packet paths."""

    def __init__(
        self,
        host: Host,
        clock: SimClock,
        rng: Optional[random.Random] = None,
        strategy_factory: Optional[StrategyFactory] = None,
        insertion_ttl_for: Optional[Callable[[str], int]] = None,
    ) -> None:
        self.host = host
        self.clock = clock
        self.rng = rng or random.Random(0xC0FFEE)
        self.strategy_factory = strategy_factory or (lambda ctx: NoStrategy(ctx))
        #: Maps destination IP -> TTL that reaches the GFW but not the
        #: server; defaults to a conservative constant when unwired.
        self.insertion_ttl_for = insertion_ttl_for or (lambda server_ip: 10)
        self.contexts: Dict[ConnKey, ConnectionContext] = {}
        self.strategies: Dict[ConnKey, EvasionStrategy] = {}
        #: Hooks for non-TCP interception (the DNS forwarder registers
        #: here); each receives (packet, now) and returns a release list
        #: or None to decline.
        self.udp_hooks: List[Callable[[IPPacket, float], Optional[List[IPPacket]]]] = []
        self._attached = False
        self._bus = get_bus()
        registry = get_registry()
        self._metric_intercepted = registry.counter("strategy.packets_intercepted")
        self._metric_dropped = registry.counter("strategy.packets_dropped")
        self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        self.host.add_egress_filter(self._egress)
        self.host.register_handler(self._ingress, prepend=True)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.host.remove_egress_filter(self._egress)
        self.host.unregister_handler(self._ingress)
        self._attached = False

    def strategy_for(self, key: ConnKey) -> Optional[EvasionStrategy]:
        return self.strategies.get(key)

    def forget_connection(self, key: ConnKey) -> None:
        self.contexts.pop(key, None)
        self.strategies.pop(key, None)

    # ------------------------------------------------------------------
    def _egress(self, packet: IPPacket, now: float) -> List[IPPacket]:
        segment = packet.payload
        if segment.__class__ is not TCPSegment:
            if packet.is_udp:
                for hook in self.udp_hooks:
                    result = hook(packet, now)
                    if result is not None:
                        return result
            return [packet]
        key: ConnKey = (segment.src_port, packet.dst, segment.dst_port)
        ctx = self.contexts.get(key)
        if ctx is None:
            if not segment.is_pure_syn:
                return [packet]  # not a connection we watched from birth
            ctx = ConnectionContext(
                src_ip=packet.src,
                src_port=segment.src_port,
                dst_ip=packet.dst,
                dst_port=segment.dst_port,
                clock=self.clock,
                rng=self.rng,
                raw_send=self.host.send_raw,
                insertion_ttl=self.insertion_ttl_for(packet.dst),
            )
            self.contexts[key] = ctx
            self.strategies[key] = self.strategy_factory(ctx)
        ctx.observe_outgoing(packet)
        strategy = self.strategies[key]
        released = strategy.on_outgoing(packet)
        self._metric_intercepted.inc()
        dropped = packet not in released
        if dropped:
            self._metric_dropped.inc()
        if self._bus.enabled:
            verdict = "drop" if dropped else (
                "accept" if released == [packet] else "rewrite"
            )
            self._bus.publish(
                "strategy", "on_outgoing", time=now,
                strategy=strategy.strategy_id, verdict=verdict,
                summary=packet.summary(),
                released=len(released),
            )
        return released

    def _ingress(self, packet: IPPacket, now: float) -> bool:
        # Unrolled is_tcp/tcp property pair — this monitor sits ahead of
        # the TCP stack on every delivered packet.
        segment = packet.payload
        if segment.__class__ is not TCPSegment or packet.dst != self.host.ip:
            return False
        key: ConnKey = (segment.dst_port, packet.src, segment.src_port)
        ctx = self.contexts.get(key)
        if ctx is not None:
            ctx.observe_incoming(packet)
            self.strategies[key].on_incoming(packet)
        return False  # never claim; the TCP stack still processes it
