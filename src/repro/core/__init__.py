"""INTANG — the paper's measurement-driven censorship-evasion tool (§6).

The real INTANG is ~3.3 k lines of C built on netfilter-queue and raw
sockets; this package is its architectural twin on the simulator:

- :mod:`repro.core.framework` — the packet-interception layer (the
  netfilter-queue analogue): outgoing packets are diverted through the
  active strategy's callbacks, which may hold, replace, or augment them
  with insertion packets sent through a raw-socket path that bypasses
  re-interception;
- :mod:`repro.core.strategy_base` — the strategy plug-in interface and
  per-connection context (sequence tracking, hop estimates, crafting
  helpers);
- :mod:`repro.core.cache` — the Redis-substitute TTL'd key-value store
  and the transient LRU front cache of §6;
- :mod:`repro.core.selection` — measurement-driven strategy selection:
  historical per-server results decide which strategy a new connection
  uses;
- :mod:`repro.core.dns_forwarder` — the DNS thread: UDP queries to
  TCP-DNS conversion so reset-evasion strategies protect DNS too;
- :mod:`repro.core.responsiveness` — the GFW responsiveness/model probe
  (the measurement half of the paper's "measurement-driven" tool);
- :mod:`repro.core.intang` — the assembled tool.
"""

from repro.core.cache import KeyValueStore, LRUCache
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.core.framework import InterceptionFramework
from repro.core.hops import HopEstimator
from repro.core.selection import StrategyRecord, StrategySelector
from repro.core.dns_forwarder import DNSForwarder
from repro.core.responsiveness import ResponsivenessProbe, ResponsivenessReport
from repro.core.intang import INTANG

__all__ = [
    "KeyValueStore",
    "LRUCache",
    "ConnectionContext",
    "EvasionStrategy",
    "InterceptionFramework",
    "HopEstimator",
    "StrategyRecord",
    "StrategySelector",
    "DNSForwarder",
    "ResponsivenessProbe",
    "ResponsivenessReport",
    "INTANG",
]
