"""Strategy plug-in interface and per-connection context (§6).

"Each evasion strategy dictates specific interception points (i.e., the
types of packets to intercept) and the corresponding actions to take at
each point (e.g., inject an insertion packet).  A new strategy can be
derived … by implementing new logic in the callback functions registered
as interception points.  A strategy can decide on whether to accept or
to drop an intercepted packet, and can also modify the packet.  It can
craft and inject new packets as well."

:class:`EvasionStrategy` is exactly that callback interface;
:class:`ConnectionContext` carries everything a strategy needs to craft
insertion packets: live sequence numbers snooped from both directions,
the TTL estimate for this server, timestamp state, and an RNG.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.netstack.options import KIND_TIMESTAMP
from repro.netstack.packet import (
    ACK,
    IPPacket,
    TCPSegment,
    seq_add,
)
from repro.netsim.simclock import SimClock
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry


class ConnectionContext:
    """Per-connection state shared by the framework and its strategy."""

    def __init__(
        self,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        clock: SimClock,
        rng: random.Random,
        raw_send: Callable[[IPPacket], None],
        insertion_ttl: int = 10,
    ) -> None:
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.clock = clock
        self.rng = rng
        self.raw_send = raw_send
        #: TTL that reaches the GFW but (we hope) not the server.
        self.insertion_ttl = insertion_ttl
        # -- snooped connection state -------------------------------------
        self.client_isn: Optional[int] = None
        self.server_isn: Optional[int] = None
        self.snd_nxt: int = 0
        self.rcv_nxt: int = 0
        self.saw_syn = False
        self.saw_synack = False
        self.handshake_done = False
        self.request_packets_seen = 0
        self.last_tsval_sent: Optional[int] = None
        #: Insertion packets this connection emitted (for tests/metrics).
        self.insertions_sent: List[IPPacket] = []
        self._bus = get_bus()
        self._metric_insertions = get_registry().counter(
            "strategy.insertions_sent"
        )

    # -- observation hooks (called by the framework) -----------------------
    def observe_outgoing(self, packet: IPPacket) -> None:
        segment = packet.tcp
        if segment.is_pure_syn and not self.saw_syn:
            self.saw_syn = True
            self.client_isn = segment.seq
            self.snd_nxt = seq_add(segment.seq, 1)
        elif segment.payload:
            end = seq_add(segment.seq, len(segment.payload))
            if _seq_after(end, self.snd_nxt):
                self.snd_nxt = end
            self.request_packets_seen += 1
        option = segment.find_option(KIND_TIMESTAMP)
        if option is not None:
            self.last_tsval_sent = option.tsval  # type: ignore[union-attr]
        if (
            self.saw_synack
            and not self.handshake_done
            and segment.has_ack
            and not segment.is_syn
        ):
            self.handshake_done = True

    def observe_incoming(self, packet: IPPacket) -> None:
        segment = packet.tcp
        if segment.is_synack and not self.saw_synack:
            self.saw_synack = True
            self.server_isn = segment.seq
            self.rcv_nxt = seq_add(segment.seq, 1)
        elif segment.payload:
            end = seq_add(segment.seq, len(segment.payload))
            if _seq_after(end, self.rcv_nxt):
                self.rcv_nxt = end

    # -- crafting helpers ---------------------------------------------------
    def make_packet(
        self,
        flags: int,
        seq: Optional[int] = None,
        ack: Optional[int] = None,
        payload: bytes = b"",
        ttl: int = 64,
    ) -> IPPacket:
        """A packet on this connection's four-tuple with given fields."""
        segment = TCPSegment(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt if seq is None else seq,
            ack=(self.rcv_nxt if ack is None else ack) if flags & ACK else 0,
            flags=flags,
            window=65535,
            payload=payload,
        )
        packet = IPPacket(src=self.src_ip, dst=self.dst_ip, payload=segment, ttl=ttl)
        packet.meta["origin"] = "intang-insertion"
        return packet

    def out_of_window_seq(self, distance: int = 0x40000000) -> int:
        """A sequence number far outside both endpoints' windows."""
        return seq_add(self.snd_nxt, distance)

    def _now(self) -> float:
        """Sim-time for telemetry; unit tests build contexts clockless."""
        return self.clock.now if self.clock is not None else 0.0

    def send_insertion(self, packet: IPPacket, copies: int = 1) -> None:
        """Emit an insertion packet ``copies`` times via the raw path.

        §3.4: "We cope with such dynamics by repeating the sending of the
        insertion packets thrice" — redundancy against packet loss.  Raw
        sends go on the wire *before* any packet the strategy is holding,
        so this is the right call for insertions that must precede the
        intercepted packet (fake SYNs, prefill junk).
        """
        for _ in range(max(1, copies)):
            duplicate = packet.copy()
            self.insertions_sent.append(duplicate)
            self._metric_insertions.inc()
            self.raw_send(duplicate)
        if self._bus.enabled:
            self._bus.publish(
                "strategy", "insertion", time=self._now(), mode="raw",
                copies=max(1, copies), summary=packet.summary(),
            )

    def queue_insertion(
        self, released: List[IPPacket], packet: IPPacket, copies: int = 1
    ) -> None:
        """Append insertion copies to a strategy's release list.

        Use this when the insertion must follow the intercepted packet on
        the wire (e.g. a teardown RST that has to trail the handshake
        ACK): packets in the release list are transmitted in order.
        """
        for _ in range(max(1, copies)):
            duplicate = packet.copy()
            self.insertions_sent.append(duplicate)
            self._metric_insertions.inc()
            released.append(duplicate)
        if self._bus.enabled:
            self._bus.publish(
                "strategy", "insertion", time=self._now(), mode="queued",
                copies=max(1, copies), summary=packet.summary(),
            )

    def key(self) -> tuple:
        return (self.src_port, self.dst_ip, self.dst_port)


def _seq_after(a: int, b: int) -> bool:
    return ((a - b) & 0xFFFFFFFF) < 0x80000000 and a != b


class EvasionStrategy:
    """Base class for all evasion strategies (the §6 plug-in interface).

    Subclasses override :meth:`on_outgoing` (return the list of packets
    to actually release, in order — returning ``[]`` drops the packet,
    returning extra packets injects them) and optionally
    :meth:`on_incoming` (pure observation; incoming packets cannot be
    dropped by an on-host tool).
    """

    #: Unique identifier used by the selector and the result cache.
    strategy_id: str = "base"
    #: Human-readable summary for reports.
    description: str = ""

    def __init__(self, ctx: ConnectionContext) -> None:
        self.ctx = ctx

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        return [packet]

    def on_incoming(self, packet: IPPacket) -> None:  # pragma: no cover
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.strategy_id}>"


class NoStrategy(EvasionStrategy):
    """The paper's baseline row: packets pass through untouched."""

    strategy_id = "none"
    description = "No evasion; baseline measurement."
